package plan

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/dtree"
	"repro/internal/fault"
	"repro/internal/fd"
	"repro/internal/logical"
	"repro/internal/obdd"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/table"
)

// Style selects the plan family of §V.B / Fig. 7.
type Style int

// Plan styles.
const (
	// Lazy computes the answer tuples with an optimizer-chosen join order
	// and runs the confidence operator once, at the very top (Fig. 7c).
	Lazy Style = iota
	// Eager pushes probability-computation operators onto every table and
	// after every join, following the hierarchical join order (Fig. 7a).
	Eager
	// Hybrid joins a prefix of the relations, applies the valid operators
	// there, and finishes lazily (Fig. 7b).
	Hybrid
	// SafeMystiQ is the baseline: MystiQ's safe plans, evaluated without
	// variable columns (Fig. 2, §VII).
	SafeMystiQ
	// MonteCarlo computes the answer tuples lazily and estimates each
	// answer's confidence from its lineage DNF with an (ε, δ) Monte Carlo
	// sampler (naive or Karp–Luby, internal/prob). It works for every
	// conjunctive query — general conjunctive queries are #P-hard (§II) —
	// and is the last rung of the exact styles' fallback chain.
	MonteCarlo
	// OBDD computes the answer tuples lazily and compiles each answer's
	// lineage DNF into a reduced ordered binary decision diagram
	// (internal/obdd): exact confidences whenever the diagram fits the
	// node budget — including for many queries without a hierarchical
	// signature — and certified deterministic [lo, hi] bounds (reported
	// via Stats.LowerBound/UpperBound) when it does not. Exact styles try
	// this compilation before falling back to Monte Carlo.
	OBDD
	// DTree computes the answer tuples lazily and decomposes each answer's
	// lineage DNF into a d-tree (internal/dtree): independent-AND and
	// independent-OR decompositions with Shannon cofactoring only as a
	// last resort. It needs no variable order, so lineage whose OBDD
	// explodes under every occurrence-derived order — e.g. many
	// variable-disjoint clause blocks with interleaved variables — still
	// resolves exactly; past the step budget it reports certified
	// deterministic [lo, hi] bounds like the OBDD style. Exact styles try
	// it after OBDD compilation and before Monte Carlo.
	DTree
	// Auto is the cost-based adaptive planner: it analyzes the catalog
	// (cached), enumerates the styles applicable to the query — respecting
	// the hierarchical→OBDD→d-tree→MC fallback ladder and RequireExact —
	// prices each with the cost model of cost.go, and dispatches the
	// cheapest. Stats.ChosenStyle and Stats.EstimatedCost report the
	// decision; the computed confidences are bit-identical to running the
	// chosen style directly.
	Auto
)

// allStyles lists every style; String, ParseStyle and StyleNames derive
// from it so the set cannot drift across surfaces.
var allStyles = []Style{Lazy, Eager, Hybrid, SafeMystiQ, MonteCarlo, OBDD, DTree, Auto}

// styleNames aligns with the Style constants (Lazy = 0, ...).
var styleNames = [...]string{"lazy", "eager", "hybrid", "mystiq", "mc", "obdd", "dtree", "auto"}

// String names the style.
func (s Style) String() string {
	if s >= 0 && int(s) < len(styleNames) {
		return styleNames[s]
	}
	return "?"
}

// StyleNames returns every style name joined by "|" — the canonical
// usage-string fragment for the command-line tools.
func StyleNames() string {
	names := make([]string, len(allStyles))
	for i, s := range allStyles {
		names[i] = s.String()
	}
	return strings.Join(names, "|")
}

// ParseStyle maps a style name (as printed by Style.String and accepted by
// the command-line tools) back to the Style.
func ParseStyle(name string) (Style, error) {
	for _, s := range allStyles {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown style %q (want %s)", name, StyleNames())
}

// Spec configures a plan run.
type Spec struct {
	Style Style
	// HybridPrefix is, for Hybrid, the number of relations (in lazy join
	// order) joined before the eager operator application; 0 defaults to
	// len(rels)-1 (aggregate before the last join).
	HybridPrefix int
	// Conf tunes the confidence operator's sorts.
	Conf conf.Options
	// MC tunes the Monte Carlo estimator (ε, δ, seed, method, workers) for
	// the MonteCarlo style and for the automatic fallback.
	MC prob.MCOptions
	// OBDD tunes lineage compilation (node budget, anytime target width)
	// for the OBDD style and for the exact styles' OBDD fallback tier.
	OBDD obdd.Options
	// DTree tunes lineage decomposition (step budget, anytime target
	// width) for the DTree style and for the exact styles' d-tree fallback
	// tier.
	DTree dtree.Options
	// RowExec forces the classic row-at-a-time execution of the relational
	// plumbing. By default the lowering collects each materialized subtree
	// through the columnar tier (engine.CollectCtxVec): fully lowerable
	// scan→filter→project→join pipelines run as vectorized column batches,
	// and anything else falls back to the row adapter at the first
	// non-columnar operator. The two tiers emit the same tuples in the same
	// order, so confidences are bit-identical either way; RowExec exists for
	// benchmarking the difference and for differential tests.
	RowExec bool
	// RequireExact restores the paper's strict behaviour: exact styles
	// reject queries without a hierarchical signature instead of falling
	// through the OBDD and Monte Carlo tiers, and the OBDD style errors
	// instead of reporting certified bounds when the budget is exceeded.
	RequireExact bool
	// Workers sizes the shared worker pool driving every parallel stage of
	// the run: partitioned scans and hash-partitioned joins, the
	// partition-parallel aggregation passes of the confidence operator,
	// per-answer OBDD compilation and Monte Carlo estimation. 0 defaults to
	// GOMAXPROCS; 1 forces the classic single-threaded executor. The
	// computed confidences are bit-identical for every worker count.
	Workers int
	// Pool, when non-nil, supplies an existing worker pool instead of a
	// fresh one of Workers workers — the sprout.Engine facade passes its
	// pool here so every concurrently served query draws from one global
	// slot budget.
	Pool *pool.Pool
	// Trace, when set, collects a per-operator execution trace during the
	// run and attaches it to Stats.Trace: per-operator row counts, lineage
	// statistics, compilation and sampler detail. The trace's structural
	// attributes are deterministic across worker counts and batch sizes;
	// its loose attributes (timings, batch counts) are not.
	Trace bool
	// Metrics, when non-nil, receives engine-wide counters and latency
	// histograms for every run under this spec (queries, failures, tuple
	// and confidence times, per-tier effort totals). Recording happens
	// once per query — never on the per-row hot path — and a nil registry
	// costs nothing.
	Metrics *obs.Registry
	// MemBudget caps one run's governed working memory (bytes): external
	// sort buffers, hash-join build sides, and the lineage-compilation node
	// budgets. On pressure the run degrades — sorts spill earlier, hash
	// joins fall back to sort-merge (grace) mode, compilation tiers shrink
	// their budgets toward certified bounds — and Stats.Degraded reports
	// it. 0 means ungoverned (unless Mem alone is set, which installs a
	// counting-only governor).
	MemBudget int64
	// Mem is the engine-wide parent governor: each run's per-query governor
	// (created from MemBudget) chains to it, so concurrent queries share one
	// engine-level accounting root. nil means no engine-level accounting.
	Mem *fault.Governor
	// Watermark enables graceful deadline degradation: this long before the
	// run context's deadline, the OBDD and d-tree tiers stop and return
	// their current certified [lo, hi] bounds and the Monte Carlo tier its
	// running estimate with the (wider) ε it actually achieved, instead of
	// dying with context.DeadlineExceeded and nothing to show. 0 disables
	// the watermark (deadline-exceeded runs fail, exactly as before).
	Watermark time.Duration
	// Retry re-runs a query whose failure is a transient injected I/O
	// fault (fault.IsTransient), with capped exponential backoff and
	// deterministic jitter. The zero value disables plan-level retries;
	// storage-level retries are configured on the fault injector itself.
	Retry fault.Retry
}

// Stats reports the execution breakdown the paper's figures use.
type Stats struct {
	Plan           string        // human-readable plan description
	Signature      string        // signature used for confidence computation
	TupleTime      time.Duration // computing + materializing answer tuples
	ProbTime       time.Duration // confidence computation
	AnswerTuples   int64         // answer tuples before duplicate elimination
	DistinctTuples int64         // distinct answer tuples
	// Scans counts confidence-computation passes over materialized
	// intermediates: eager aggregation steps plus the final sort+scan for
	// the exact styles, MystiQ's independent projections, and the single
	// lineage-collection grouping pass of the OBDD/d-tree/Monte Carlo
	// tiers — every rung of the fallback ladder reports it consistently.
	Scans int
	// Approximate marks non-exact confidences: (ε, δ) Monte Carlo
	// estimates, or OBDD/d-tree bound midpoints (then
	// LowerBound/UpperBound certify the truth deterministically).
	Approximate bool
	// Samples is the total number of Monte Carlo samples drawn (0 for
	// exact plans).
	Samples int64
	// Epsilon is the weakest per-answer additive error guarantee of an
	// approximate run (0 for exact and OBDD plans — OBDD bounds are
	// deterministic, not probabilistic).
	Epsilon float64
	// OBDDNodes counts OBDD nodes built plus anytime expansion steps
	// across all answers (0 for non-OBDD plans).
	OBDDNodes int64
	// DTreeNodes counts d-tree decomposition steps across all answers (0
	// for plans that never reach the d-tree tier).
	DTreeNodes int64
	// LowerBound and UpperBound certify every answer's true confidence of
	// an OBDD or d-tree run that exceeded its budget: for each answer,
	// truth ∈ [LowerBound, UpperBound]. Both are 0 when unused; they
	// differ only on bounded (Approximate) lineage-compilation results.
	LowerBound float64
	UpperBound float64
	// MaxWidth is the widest per-answer certified interval of a bounded
	// OBDD or d-tree run: every reported confidence is within MaxWidth/2
	// of the truth (0 for exact and Monte Carlo plans).
	MaxWidth float64
	// MemoHits and MemoMisses count residual-memo probes of the lineage
	// compilation tier that produced the result — OBDD or d-tree (0 for
	// plans that never compiled lineage). Their ratio is the memo hit
	// rate the benchmark records track.
	MemoHits   int64
	MemoMisses int64
	// ColBatches and RowBatches count the batches the relational plumbing
	// moved through the columnar and row tiers — how much of the run was
	// vectorized. They are populated only on traced runs (the counters ride
	// the same per-operator wrappers as the trace's row counts) and are
	// loose: batch counts vary with worker count and batch size.
	ColBatches int64
	RowBatches int64
	// ChosenStyle names the style the Auto planner dispatched ("" for
	// fixed-style runs).
	ChosenStyle string
	// EstimatedCost is the cost model's estimate (abstract tuple-operation
	// units) of the chosen plan under the Auto style (0 otherwise).
	EstimatedCost float64
	// Trace is the per-operator execution trace of the run (nil unless
	// Spec.Trace was set).
	Trace *obs.Trace
	// Degraded marks a run that completed in a reduced mode instead of
	// failing: the deadline watermark stopped a tier at its current
	// certified bounds, or the memory governor denied a reservation and the
	// run fell back to spill-earlier / grace-join / shrunk-budget paths.
	// The result is still correct under its (weaker) reported guarantees.
	Degraded bool
	// DegradeReason names what degraded: "deadline", "memory", or
	// "deadline+memory" ("" when Degraded is false).
	DegradeReason string
	// Retries counts plan-level re-runs after transient injected I/O
	// faults (Spec.Retry); storage-level retries are counted by the
	// injector, not here.
	Retries int64
}

// markDegraded folds one degradation cause into the stats, combining
// multiple causes into a "+"-joined reason.
func markDegraded(s *Stats, reason string) {
	s.Degraded = true
	switch {
	case s.DegradeReason == "":
		s.DegradeReason = reason
	case !strings.Contains(s.DegradeReason, reason):
		s.DegradeReason += "+" + reason
	}
}

// Total returns the end-to-end wall-clock time.
func (s *Stats) Total() time.Duration { return s.TupleTime + s.ProbTime }

// Result is a computed answer: distinct head tuples plus their confidence
// in the conf column.
type Result struct {
	Rows  *table.Relation
	Stats Stats
}

// Run executes q on the catalog under the given FDs with the requested plan
// style. Exact styles use the most precise signature available (FD-refined
// when the reduct is hierarchical, plain otherwise); queries with neither —
// #P-hard in general — fall through the chain of obdd.go: OBDD compilation
// of the per-answer lineage (still exact when the diagrams fit the node
// budget), then the Monte Carlo plan, which estimates confidences instead
// of erroring out. Set spec.RequireExact to turn the fallback back into an
// error.
func Run(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	return RunContext(context.Background(), c, q, sigma, spec)
}

// RunContext is Run with cancellation: every pipeline, sort pass, OBDD
// compilation and Monte Carlo sampler checks ctx and aborts with ctx.Err()
// shortly after it is cancelled.
func RunContext(ctx context.Context, c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	p, err := Prepare(c, q, sigma, spec)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// Prepared is a query plan resolved once — validation done, style checked,
// signature computed, the logical plan IR built, fallback chain chosen,
// worker pool pinned — and runnable many times, concurrently, against the
// (frozen) catalog. It is the unit the sprout.Engine facade serves.
type Prepared struct {
	c     *Catalog
	q     *query.Query
	sigma *fd.Set
	spec  Spec
	pool  *pool.Pool

	// b is the built logical plan every run lowers from. For the Auto
	// style it is the plan of the chosen style, and chosen/costs describe
	// the decision.
	b      *built
	chosen Style
	costs  []CostEstimate
}

// Prepare resolves a plan without running it. Errors that do not depend on
// the data — invalid queries, unknown styles, RequireExact on a query
// without a hierarchical signature — surface here, once, instead of on
// every Run. The returned plan carries the logical IR every style lowers
// from; for Auto it additionally records the cost-based style choice.
func Prepare(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Prepared{c: c, q: q, sigma: sigma, spec: spec, pool: pool.Get(spec.Pool, spec.Workers)}
	if spec.Style == Auto {
		chosen, costs, err := ChooseStyle(c, q, sigma, spec)
		if err != nil {
			return nil, err
		}
		p.chosen = chosen
		p.costs = costs
		spec.Style = chosen
	}
	b, err := buildLogical(c, q, sigma, spec)
	if err != nil {
		return nil, err
	}
	p.b = b
	return p, nil
}

// Logical returns the logical plan IR the prepared query lowers from.
func (p *Prepared) Logical() *logical.Plan { return p.b.lp }

// Run executes the prepared plan. It is safe for concurrent use: every call
// carries its own execution state, and calls share only the worker pool and
// the read-only catalog.
func (p *Prepared) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec := p.spec
	if spec.Style == Auto {
		spec.Style = p.chosen
	}
	// Per-query memory governor, chained to the engine-wide parent: sorts,
	// governed joins and the confidence operator's buffers charge it; the
	// compilation tiers shrink their node budgets to its headroom.
	var gov *fault.Governor
	if spec.MemBudget > 0 || spec.Mem != nil {
		gov = fault.NewGovernor(spec.MemBudget, spec.Mem)
		spec.Conf.Mem = gov
		shrinkBudgets(&spec, gov)
	}
	// Deadline watermark: one latching Stop probe shared by every tier.
	if stop := watermarkStop(ctx, spec.Watermark); stop != nil {
		spec.OBDD.Stop, spec.DTree.Stop, spec.MC.Stop = stop, stop, stop
	}
	var tr *obs.Trace
	if p.spec.Trace {
		tr = obs.NewTrace(p.q.Name, spec.Style.String(), p.pool.Workers())
	}
	ex := exec{ctx: ctx, pool: p.pool, tr: tr,
		mem: gov, sortBudget: spec.Conf.SortBudget, tmpDir: spec.Conf.TmpDir}
	// Thread the run's context and pool into the operator options so every
	// tier draws from the same slot budget and honours cancellation.
	spec.Conf.Ctx, spec.Conf.Pool = ctx, p.pool
	spec.MC.Pool = p.pool
	reg := p.spec.Metrics
	t0 := statsNow()
	// Every served run counts, failed or not; latency and work counters are
	// only recorded for completed runs. The nil-registry path must stay
	// zero-cost, so even the name concatenation is guarded.
	if reg != nil {
		h := reg.ShardHint()
		reg.Counter("queries_total").AddShard(h, 1)
		reg.Counter("queries_style_"+p.spec.Style.String()+"_total").AddShard(h, 1)
	}
	reg.Gauge("queries_inflight").Add(1)
	res, retries, err := p.runAttempts(ex, spec)
	reg.Gauge("queries_inflight").Add(-1)
	if err != nil {
		reg.Counter("queries_failed_total").AddShard(reg.ShardHint(), 1)
		return nil, err
	}
	res.Stats.Retries = retries
	if gov.Pressured() {
		markDegraded(&res.Stats, "memory")
	}
	if p.spec.Style == Auto {
		res.Stats.ChosenStyle = p.chosen.String()
		res.Stats.EstimatedCost = chosenCost(p.costs, p.chosen)
		res.Stats.Plan = "auto[" + p.chosen.String() + "] → " + res.Stats.Plan
	}
	res.Stats.Trace = tr
	if reg != nil {
		p.record(reg, &res.Stats, statsSince(t0))
	}
	return res, nil
}

// runAttempts executes the prepared plan up to Spec.Retry.MaxAttempts
// times: a failure that is a transient injected I/O fault is retried with
// capped exponential backoff (deterministic jitter, seeded by the Monte
// Carlo seed so chaos schedules replay identically); everything else —
// hard faults, cancellation, plan errors — surfaces immediately.
func (p *Prepared) runAttempts(ex exec, spec Spec) (*Result, int64, error) {
	attempts := 1
	if spec.Retry.Enabled() {
		attempts = spec.Retry.MaxAttempts
	}
	var retries int64
	for attempt := 1; ; attempt++ {
		res, err := p.runRecovered(ex, spec)
		if err == nil {
			return res, retries, nil
		}
		if attempt >= attempts || !fault.IsTransient(err) || ex.ctx.Err() != nil {
			return nil, retries, err
		}
		retries++
		time.Sleep(spec.Retry.Backoff(spec.MC.Seed, attempt))
	}
}

// runRecovered runs one attempt with a panic boundary: an operator or tier
// panic on the run's own goroutine becomes a typed *fault.PanicError (the
// worker-pool boundary in internal/pool does the same for pooled tasks),
// so a chaos-injected panic fails one query, not the process.
func (p *Prepared) runRecovered(ex exec, spec Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &fault.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return runLogical(ex, p.c, p.q, p.b, spec)
}

// compileNodeCost is the rough per-node working-set estimate (bytes) used
// to translate governor headroom into OBDD node / d-tree step budgets.
const compileNodeCost = 64

// shrinkBudgets caps the lineage-compilation budgets to the governor's
// headroom: under memory pressure the compilers stop earlier and report
// certified bounds instead of growing an arena the budget cannot admit.
func shrinkBudgets(spec *Spec, gov *fault.Governor) {
	rem := gov.Remaining()
	if rem <= 0 || rem/compileNodeCost >= int64(obdd.DefaultNodeBudget) {
		return // headroom covers even the default budgets; nothing to shrink
	}
	maxNodes := int(rem / compileNodeCost)
	if maxNodes < 1 {
		maxNodes = 1
	}
	if spec.OBDD.NodeBudget <= 0 || spec.OBDD.NodeBudget > maxNodes {
		spec.OBDD.NodeBudget = maxNodes
	}
	if spec.DTree.NodeBudget <= 0 || spec.DTree.NodeBudget > maxNodes {
		spec.DTree.NodeBudget = maxNodes
	}
}

// record publishes one finished run into the metrics registry — a handful
// of bulk adds per query, sharded so concurrent Engine queries do not
// contend on the counter cache lines. Never called on the per-row path.
func (p *Prepared) record(reg *obs.Registry, s *Stats, wall time.Duration) {
	h := reg.ShardHint()
	reg.Counter("answer_tuples_total").AddShard(h, s.AnswerTuples)
	reg.Counter("distinct_tuples_total").AddShard(h, s.DistinctTuples)
	reg.Counter("conf_scans_total").AddShard(h, int64(s.Scans))
	reg.Counter("obdd_nodes_total").AddShard(h, s.OBDDNodes)
	reg.Counter("dtree_nodes_total").AddShard(h, s.DTreeNodes)
	reg.Counter("mc_samples_total").AddShard(h, s.Samples)
	reg.Counter("memo_hits_total").AddShard(h, s.MemoHits)
	reg.Counter("memo_misses_total").AddShard(h, s.MemoMisses)
	if s.Approximate {
		reg.Counter("approximate_results_total").AddShard(h, 1)
	}
	reg.Histogram("query_seconds").Observe(wall.Seconds())
	reg.Histogram("tuple_seconds").Observe(s.TupleTime.Seconds())
	reg.Histogram("prob_seconds").Observe(s.ProbTime.Seconds())
}

// Answer materializes the answer tuples of q under the lazy join order:
// head data columns plus the V/P column pairs of every relation — exactly
// the input the confidence operator consumes. Exposed for the benchmark
// harness (Fig. 13 measures the operator in isolation on this relation).
func Answer(c *Catalog, q *query.Query) (*table.Relation, error) {
	return answerPipeline(serialExec(), c, q, LazyOrder(c, q))
}

// answerPipeline materializes the left-deep answer tree over the given join
// order — the lazy skeleton, lowered through the shared logical IR path.
func answerPipeline(ex exec, c *Catalog, q *query.Query, order []query.RelRef) (*table.Relation, error) {
	st := &lowerState{ex: ex, c: c, q: q}
	return st.materialize(logical.AnswerTree(q, order), nil)
}

// treeForOrder returns the query tree used for hierarchy-driven join
// orders, preferring the FD-reduct tree.
func treeForOrder(q *query.Query, sigma *fd.Set) (*query.Tree, error) {
	if _, tree, err := fd.HierarchicalReduct(q, sigma); err == nil {
		return tree, nil
	}
	return query.TreeFor(q)
}
