package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/dtree"
	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/table"
)

// hardDB builds a randomized instance of the prototypical #P-hard pattern
// R(a) ⋈ S(a,b) ⋈ T(b): bipartite lineage that no hierarchical signature
// covers (§II). Sizes stay small enough for exact world enumeration.
func hardDB(rng *rand.Rand) *Catalog {
	c := NewCatalog()
	var v prob.Var
	newVar := func() prob.Var { v++; return v }
	p := func() float64 { return 0.1 + 0.8*rng.Float64() }

	r := table.NewProbTable("R", table.DataCol("a", table.KindInt), table.DataCol("c", table.KindInt))
	s := table.NewProbTable("S", table.DataCol("a", table.KindInt), table.DataCol("b", table.KindInt))
	u := table.NewProbTable("T", table.DataCol("b", table.KindInt))
	for a := 0; a < 3; a++ {
		for c := 0; c < 2; c++ {
			r.MustAddRow(newVar(), p(), table.Int(int64(a)), table.Int(int64(c)))
		}
	}
	for b := 0; b < 3; b++ {
		u.MustAddRow(newVar(), p(), table.Int(int64(b)))
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if rng.Float64() < 0.6 {
				s.MustAddRow(newVar(), p(), table.Int(int64(a)), table.Int(int64(b)))
			}
		}
	}
	c.MustAdd(r)
	c.MustAdd(s)
	c.MustAdd(u)
	return c
}

// hardQuery is π{c}(R(a,c) ⋈ S(a,b) ⋈ T(b)): S joins R on a and T on b with
// incomparable relation sets, so no hierarchical signature exists; the head
// attribute c fans the answer into multiple groups.
func hardQuery() *query.Query {
	return &query.Query{
		Name: "hard",
		Head: []string{"c"},
		Rels: []query.RelRef{
			query.Rel("R", "a", "c"),
			query.Rel("S", "a", "b"),
			query.Rel("T", "b"),
		},
	}
}

// TestMonteCarloPlanVsWorlds: the Monte Carlo plan's estimates on the hard
// Boolean query must land within ε of exact possible-world enumeration, for
// several randomized instances with fixed seeds.
func TestMonteCarloPlanVsWorlds(t *testing.T) {
	const eps = 0.02
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(41 + trial)))
		c := hardDB(rng)
		q := hardQuery()
		res, err := Run(c, q, fd.NewSet(), Spec{
			Style: MonteCarlo,
			MC:    prob.MCOptions{Epsilon: eps, Delta: 1e-4, Seed: int64(trial)},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Stats.Approximate {
			t.Error("Monte Carlo plan must mark stats approximate")
		}

		answer, err := Answer(c, q)
		if err != nil {
			t.Fatal(err)
		}
		l, err := conf.CollectLineage(answer)
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Keys) != res.Rows.Len() {
			t.Fatalf("trial %d: %d lineage groups vs %d result rows", trial, len(l.Keys), res.Rows.Len())
		}
		ci := res.Rows.Schema.MustColIndex(conf.ConfCol)
		for i := range l.Keys {
			want, err := prob.ProbByWorlds(l.DNFs[i], l.Assign)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Rows.Rows[i][ci].F
			if math.Abs(got-want) > eps {
				t.Errorf("trial %d answer %d: estimate %g, exact %g for %s",
					trial, i, got, want, l.DNFs[i])
			}
		}
	}
}

// TestExactStylesFallBack: every exact style falls through the ladder on
// the hard query — OBDD compilation first (the small instance fits the
// budget, so the result stays *exact*), then d-tree decomposition when the
// node budget is starved (still exact), Monte Carlo only when both budgets
// are too tight — annotating the plan line; RequireExact keeps the
// rejection.
func TestExactStylesFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := hardDB(rng)
	for _, style := range []Style{Lazy, Eager, Hybrid, SafeMystiQ} {
		res, err := Run(c, hardQuery(), fd.NewSet(), Spec{Style: style, MC: prob.MCOptions{Seed: 2}})
		if err != nil {
			t.Fatalf("%v: fallback failed: %v", style, err)
		}
		if res.Stats.Approximate {
			t.Errorf("%v: OBDD fallback under budget must stay exact", style)
		}
		if !strings.Contains(res.Stats.Plan, "fallback") || !strings.Contains(res.Stats.Plan, style.String()) ||
			!strings.Contains(res.Stats.Plan, "obdd") {
			t.Errorf("%v: plan line should mention the OBDD fallback: %q", style, res.Stats.Plan)
		}
		if res.Stats.OBDDNodes == 0 {
			t.Errorf("%v: OBDD fallback should report nodes", style)
		}

		// A starved node budget pushes the ladder to the order-free d-tree
		// rung, which still resolves the lineage exactly.
		res, err = Run(c, hardQuery(), fd.NewSet(), Spec{
			Style: style,
			MC:    prob.MCOptions{Seed: 2},
			OBDD:  obdd.Options{NodeBudget: 1},
		})
		if err != nil {
			t.Fatalf("%v: d-tree fallback failed: %v", style, err)
		}
		if res.Stats.Approximate {
			t.Errorf("%v: d-tree fallback under budget must stay exact: %+v", style, res.Stats)
		}
		if !strings.Contains(res.Stats.Plan, "dtree") || !strings.Contains(res.Stats.Plan, "OBDD budget exceeded") {
			t.Errorf("%v: plan line should mention the d-tree rung: %q", style, res.Stats.Plan)
		}
		if res.Stats.DTreeNodes == 0 {
			t.Errorf("%v: d-tree fallback should report steps", style)
		}

		// Starving both compilation budgets pushes the ladder down to
		// Monte Carlo.
		res, err = Run(c, hardQuery(), fd.NewSet(), Spec{
			Style: style,
			MC:    prob.MCOptions{Seed: 2},
			OBDD:  obdd.Options{NodeBudget: 1},
			DTree: dtree.Options{NodeBudget: 1},
		})
		if err != nil {
			t.Fatalf("%v: MC fallback failed: %v", style, err)
		}
		if !res.Stats.Approximate || res.Stats.Samples == 0 {
			t.Errorf("%v: starved-budget fallback must be a Monte Carlo estimate: %+v", style, res.Stats)
		}
		if !strings.Contains(res.Stats.Plan, "mc") || !strings.Contains(res.Stats.Plan, "budgets exceeded") {
			t.Errorf("%v: plan line should mention the Monte Carlo rung: %q", style, res.Stats.Plan)
		}

		if _, err := Run(c, hardQuery(), fd.NewSet(), Spec{Style: style, RequireExact: true}); err == nil {
			t.Errorf("%v: RequireExact must reject the hard query", style)
		}
	}
}

// TestMonteCarloPlanDeterministic: same seed, same estimates; the worker
// count must not matter.
func TestMonteCarloPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := hardDB(rng)
	run := func(workers int) *Result {
		res, err := Run(c, hardQuery(), fd.NewSet(), Spec{
			Style: MonteCarlo,
			MC:    prob.MCOptions{Seed: 12, Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	ci := a.Rows.Schema.MustColIndex(conf.ConfCol)
	for i := range a.Rows.Rows {
		if a.Rows.Rows[i][ci].F != b.Rows.Rows[i][ci].F {
			t.Errorf("row %d: %g (1 worker) vs %g (8 workers)", i, a.Rows.Rows[i][ci].F, b.Rows.Rows[i][ci].F)
		}
	}
}

// TestUnknownStyleRejected: an invalid style must error even on queries
// where exact styles would fall back to Monte Carlo.
func TestUnknownStyleRejected(t *testing.T) {
	c := hardDB(rand.New(rand.NewSource(1)))
	if _, err := Run(c, hardQuery(), fd.NewSet(), Spec{Style: Style(99)}); err == nil {
		t.Error("unknown style must be rejected, not estimated")
	}
	if s, err := ParseStyle("mc"); err != nil || s != MonteCarlo {
		t.Errorf("ParseStyle(mc) = %v, %v", s, err)
	}
	if _, err := ParseStyle("bogus"); err == nil {
		t.Error("ParseStyle must reject unknown names")
	}
}
