package plan

import (
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// TestHybridPrefixSweep: every hybrid split point gives the same answer.
func TestHybridPrefixSweep(t *testing.T) {
	cat, _ := fig1Catalog()
	q := introQ()
	q.Sels = q.Sels[1:] // more answers
	base, err := Run(cat, q.Clone(), tpchFDs(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	for prefix := 1; prefix <= 3; prefix++ {
		res, err := Run(cat, q.Clone(), tpchFDs(), Spec{Style: Hybrid, HybridPrefix: prefix})
		if err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
		if err := sameAnswers(base.Rows, res.Rows, 1e-9); err != nil {
			t.Errorf("prefix %d: %v", prefix, err)
		}
	}
}

// TestEagerWithoutFDsUsesConservativeOps: the eager plan under no FDs uses
// starred per-table operators and still matches lazy.
func TestEagerWithoutFDsOps(t *testing.T) {
	cat, _ := fig1Catalog()
	q := introQ()
	res, err := Run(cat, q, fd.NewSet(), Spec{Style: Eager})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stats.Plan, "[") {
		t.Errorf("eager plan should report pushed operators: %s", res.Stats.Plan)
	}
	if res.Rows.Len() != 1 || !prob.ApproxEqual(res.Rows.Rows[0][1].F, 0.0028, 1e-9) {
		t.Errorf("rows = %v", res.Rows.Rows)
	}
}

// TestMystiQRuntimeFailureInjection: a Boolean query over thousands of
// high-probability tuples trips MystiQ's log-sum underflow (§VII), while
// SPROUT's operator handles it exactly.
func TestMystiQRuntimeFailureInjection(t *testing.T) {
	cat := NewCatalog()
	big := table.NewProbTable("Big", table.DataCol("k", table.KindInt))
	for i := 0; i < 200000; i++ {
		big.MustAddRow(prob.Var(i+1), 0.999, table.Int(int64(i)))
	}
	cat.MustAdd(big)
	q := &query.Query{Name: "boom", Rels: []query.RelRef{query.Rel("Big", "k")}}
	if _, err := Run(cat, q, fd.NewSet(), Spec{Style: SafeMystiQ}); err == nil {
		t.Fatal("MystiQ should fail with a runtime error on huge near-certain groups")
	} else if !strings.Contains(err.Error(), "MystiQ runtime error") {
		t.Fatalf("unexpected error: %v", err)
	}
	res, err := Run(cat, q, fd.NewSet(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 || res.Rows.Rows[0][0].F <= 0.999 {
		t.Errorf("SPROUT should compute the (≈1) confidence exactly: %v", res.Rows.Rows)
	}
}

// TestRunValidations: invalid queries and unknown styles are rejected.
func TestRunValidations(t *testing.T) {
	cat, _ := fig1Catalog()
	bad := &query.Query{Name: "bad"}
	if _, err := Run(cat, bad, fd.NewSet(), Spec{Style: Lazy}); err == nil {
		t.Error("empty query must be rejected")
	}
	if _, err := Run(cat, introQ(), fd.NewSet(), Spec{Style: Style(99)}); err == nil {
		t.Error("unknown style must be rejected")
	}
}

// TestStatsArepopulated: the stats carry plan text, signature, timings and
// cardinalities for every style.
func TestStatsArePopulated(t *testing.T) {
	for _, style := range []Style{Lazy, Eager, Hybrid, SafeMystiQ} {
		cat, _ := fig1Catalog()
		res, err := Run(cat, introQ(), tpchFDs(), Spec{Style: style})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		s := res.Stats
		if s.Plan == "" || s.Signature == "" {
			t.Errorf("%v: empty plan/signature", style)
		}
		if s.DistinctTuples != 1 {
			t.Errorf("%v: distinct = %d", style, s.DistinctTuples)
		}
		if s.Total() <= 0 {
			t.Errorf("%v: total time not recorded", style)
		}
	}
}

// TestAnswerRelationShape: plan.Answer returns head data columns plus V/P
// pairs for all relations, the operator's input contract.
func TestAnswerRelationShape(t *testing.T) {
	cat, _ := fig1Catalog()
	rel, err := Answer(cat, introQ())
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Schema
	if len(s.DataIndexes()) != 1 || s.Cols[s.DataIndexes()[0]].Name != "odate" {
		t.Errorf("data columns = %v", s.Names())
	}
	for _, src := range []string{"Cust", "Ord", "Item"} {
		if s.VarIndex(src) < 0 || s.ProbIndex(src) < 0 {
			t.Errorf("missing V/P for %s in %v", src, s.Names())
		}
	}
	// Feeding it to the operator reproduces the known confidence.
	sig, err := signature.Best(introQ(), tpchFDs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := conf.Compute(rel, sig, conf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !prob.ApproxEqual(out.Rows[0][1].F, 0.0028, 1e-9) {
		t.Errorf("operator on Answer: %v", out.Rows)
	}
}

// TestLazyOrderDisconnected: disconnected queries still get a total order
// (cross product handled downstream).
func TestLazyOrderDisconnected(t *testing.T) {
	cat := NewCatalog()
	r := table.NewProbTable("R", table.DataCol("a", table.KindInt))
	s := table.NewProbTable("S", table.DataCol("b", table.KindInt))
	r.MustAddRow(1, 0.5, table.Int(1))
	s.MustAddRow(2, 0.5, table.Int(2))
	cat.MustAdd(r)
	cat.MustAdd(s)
	q := &query.Query{Name: "prod", Rels: []query.RelRef{query.Rel("R", "a"), query.Rel("S", "b")}}
	order := LazyOrder(cat, q)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	res, err := Run(cat, q, fd.NewSet(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	// Boolean product: Pr = 0.5 · 0.5.
	if res.Rows.Len() != 1 || !prob.ApproxEqual(res.Rows.Rows[0][0].F, 0.25, 1e-12) {
		t.Errorf("rows = %v", res.Rows.Rows)
	}
}

// TestEstimatePrefersSelections: equality selections shrink estimates more
// than range selections.
func TestEstimatePrefersSelections(t *testing.T) {
	cat, _ := fig1Catalog()
	q := introQ()
	cust, _ := q.RelByName("Cust")
	item, _ := q.RelByName("Item")
	ec := estimate(cat, q, cust) // equality selection
	ei := estimate(cat, q, item) // range selection
	if ec >= ei {
		t.Errorf("estimate(Cust)=%g should be below estimate(Item)=%g", ec, ei)
	}
	if e := estimate(cat, q, query.Rel("Nope", "x")); e != 1 {
		t.Errorf("unknown table estimate = %g, want 1 (floor)", e)
	}
}

// TestJoinPipelineUsesAllSharedAttrs: joins must use every shared data
// attribute (Ord ⋈ Item share okey AND ckey in the Fig. 1 schema).
func TestJoinPipelineUsesAllSharedAttrs(t *testing.T) {
	cat, _ := fig1Catalog()
	q := introQ()
	ord, _ := q.RelByName("Ord")
	item, _ := q.RelByName("Item")
	lo, err := leafPipeline(serialExec(), cat, q, ord, false)
	if err != nil {
		t.Fatal(err)
	}
	li, err := leafPipeline(serialExec(), cat, q, item, false)
	if err != nil {
		t.Fatal(err)
	}
	j, err := joinPipeline(serialExec(), q, lo, li, map[string]bool{"Ord": true, "Item": true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := engine.Count(j)
	if err != nil {
		t.Fatal(err)
	}
	// Matching (okey, ckey) pairs in Fig. 1: okey 1 (2 items), 3 (2), 4 (1),
	// 5 (1) = 6 rows.
	if n != 6 {
		t.Errorf("join rows = %d, want 6", n)
	}
}
