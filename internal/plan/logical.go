package plan

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/fd"
	"repro/internal/logical"
	"repro/internal/query"
	"repro/internal/signature"
)

// built is a fully constructed logical plan plus the facts the lowering and
// the cost model need beyond the operator tree itself.
type built struct {
	lp *logical.Plan
	// order is the join order of left-deep plans (empty for MystiQ's
	// tree-shaped plans).
	order []query.RelRef
	// sig is the resolved hierarchical signature: the full signature for
	// sort+scan styles, the variable-order seed for OBDD plans (nil when
	// none exists).
	sig signature.Sig
	// finalSig is the signature remaining at the top of a staged plan
	// after the statically scheduled eager operators ran (equals sig for
	// lazy plans).
	finalSig signature.Sig
	// eagerStages counts the leading stages carrying eager placement
	// points (len(order) for eager, the prefix for hybrid, 0 for lazy).
	eagerStages int
	// tree is the safe plan's query tree (MystiQ only), for display.
	tree *query.Tree
	// orderNote documents the OBDD variable-order source.
	orderNote string
}

// buildLogical constructs the logical plan IR for one (query, style) pair.
// It resolves the signature, decides the fallback chain for exact styles on
// queries without one (honoring spec.RequireExact), computes the static
// eager operator schedule, and returns the IR every style lowers from.
func buildLogical(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*built, error) {
	switch spec.Style {
	case MonteCarlo:
		return buildLineage(c, q, logical.AlgMC, "mc", ""), nil
	case OBDD:
		b := buildLineage(c, q, logical.AlgOBDD, "obdd", "")
		b.orderNote = "interleaved-occurrence order"
		if s, err := signature.Best(q, sigma); err == nil {
			b.sig = s
			b.orderNote = fmt.Sprintf("order from signature %s", s)
			// Record the variable-order seed on the placement point: the
			// cost model prices signature-ordered compilation (linear on
			// hierarchical lineage) cheaper than unordered compilation.
			b.lp.Root.(*logical.Conf).Sig = s
		}
		return b, nil
	case DTree:
		// Decomposition is order-free, so unlike the OBDD style there is
		// no signature to resolve or record.
		return buildLineage(c, q, logical.AlgDTree, "dtree", ""), nil
	case Lazy, Eager, Hybrid, SafeMystiQ:
		// Exact styles; resolved below.
	default:
		return nil, fmt.Errorf("plan: unknown style %d", spec.Style)
	}

	sig, err := signature.Best(q, sigma)
	if err != nil {
		if spec.RequireExact {
			return nil, fmt.Errorf("plan: %s is not tractable (no hierarchical signature): %w", q.Name, err)
		}
		// Fallback chain: OBDD compilation (still exact under the node
		// budget), then d-tree decomposition, then Monte Carlo.
		b := buildLineage(c, q, logical.AlgLadder, spec.Style.String(),
			fmt.Sprintf("fallback from %s: no hierarchical signature", spec.Style))
		return b, nil
	}

	switch spec.Style {
	case Lazy:
		order := LazyOrder(c, q)
		root := &logical.Conf{Input: logical.AnswerTree(q, order), Alg: logical.AlgSortScan, Sig: sig, Final: true}
		return &built{
			lp:       &logical.Plan{Style: "lazy", Mode: logical.ModeLineage, Root: root},
			order:    order,
			sig:      sig,
			finalSig: sig,
		}, nil
	case Eager, Hybrid:
		return buildStaged(c, q, sigma, sig, spec)
	default: // SafeMystiQ
		return buildSafe(q, sigma)
	}
}

// buildLineage constructs the shared lazy-answer + lineage-algorithm shape
// of the Monte Carlo, OBDD, d-tree and fallback-chain plans.
func buildLineage(c *Catalog, q *query.Query, alg logical.Alg, style, note string) *built {
	order := LazyOrder(c, q)
	root := &logical.Conf{Input: logical.AnswerTree(q, order), Alg: alg, Final: true}
	return &built{
		lp:    &logical.Plan{Style: style, Mode: logical.ModeLineage, Root: root, Note: note},
		order: order,
	}
}

// buildStaged constructs the eager and hybrid plans: a left-deep join tree
// with eager confidence-placement points after each of the first
// eagerStages intermediates. The operators applied at each point — and the
// signature remaining for the top — are computed statically with Restrict,
// Replace and the static aggregation representative (conf.Rep), exactly
// mirroring what the lowering will execute.
func buildStaged(c *Catalog, q *query.Query, sigma *fd.Set, sig signature.Sig, spec Spec) (*built, error) {
	style := "eager"
	var order []query.RelRef
	eagerStages := len(q.Rels)
	if spec.Style == Eager {
		tree, err := treeForOrder(q, sigma)
		if err != nil {
			return nil, err
		}
		order = HierarchicalOrder(q, tree)
	} else {
		order = LazyOrder(c, q)
		prefix := spec.HybridPrefix
		if prefix <= 0 || prefix > len(q.Rels) {
			prefix = len(q.Rels) - 1
		}
		eagerStages = prefix
		style = fmt.Sprintf("hybrid(prefix=%d)", prefix)
	}

	full, cur := sig, sig
	joined := make(map[string]bool)
	var node logical.Node
	for i, ref := range order {
		joined[ref.Name] = true
		if i == 0 {
			node = logical.Leaf(q, ref)
		} else {
			node = logical.JoinStep(q, node, ref, joined)
		}
		if i >= eagerStages {
			continue
		}
		ops := Restrict(full, cur, joined)
		var applied []signature.Sig
		for _, op := range ops {
			if _, bare := op.(signature.Table); bare {
				continue
			}
			rep, err := conf.Rep(op)
			if err != nil {
				return nil, err
			}
			cur = Replace(cur, op, signature.Table(rep))
			applied = append(applied, op)
		}
		if len(applied) > 0 {
			node = &logical.Conf{Input: node, Alg: logical.AlgSortScan, Ops: applied}
		}
	}
	root := &logical.Conf{Input: node, Alg: logical.AlgSortScan, Sig: cur, Final: true}
	return &built{
		lp:          &logical.Plan{Style: style, Mode: logical.ModeLineage, Root: root},
		order:       order,
		sig:         sig,
		finalSig:    cur,
		eagerStages: eagerStages,
	}, nil
}

// buildSafe constructs the MystiQ safe plan (Fig. 2) as a tree-shaped IR in
// probability mode: every leaf and join is capped by an independent
// projection π^ind, and no variable columns exist.
func buildSafe(q *query.Query, sigma *fd.Set) (*built, error) {
	// Prefer the head-aware tree of the original query: its labels carry
	// the actual join attributes. The FD-reduct tree (used when the
	// original structure is non-hierarchical, e.g. Q18) drops attributes
	// functionally determined by the head, which is fine there because the
	// reduct keeps the join attributes that still matter.
	tree, err := query.TreeFor(q)
	if err != nil {
		tree, err = treeForOrder(q, sigma)
		if err != nil {
			return nil, fmt.Errorf("plan: no safe plan for %s: %w", q.Name, err)
		}
	}
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}

	var build func(t *query.Tree, parentLabel []string) (logical.Node, error)
	build = func(t *query.Tree, parentLabel []string) (logical.Node, error) {
		if t.IsLeaf() {
			// The tree may come from an FD-reduct, whose leaves carry
			// closure-extended attribute sets; use the original occurrence.
			ref, ok := q.RelByName(t.Leaf.Name)
			if !ok {
				return nil, fmt.Errorf("plan: tree leaf %s not in query", t.Leaf.Name)
			}
			keep := safeLeafKeep(q, ref, parentLabel, head)
			var n logical.Node = &logical.Scan{Ref: ref}
			var sels []query.Selection
			for _, s := range q.Sels {
				if s.Rel == ref.Name {
					sels = append(sels, s)
				}
			}
			if len(sels) > 0 {
				n = &logical.Select{Input: n, Sels: sels}
			}
			n = &logical.Project{Input: n, Attrs: keep}
			return &logical.Conf{Input: n, Alg: logical.AlgIndProject, Keep: keep}, nil
		}
		keep := safeKeepAttrs(q, t, head)
		// Children in hierarchy order: deepest first, like the safe plans
		// MystiQ produces (Fig. 2 joins Ord ⋈ Item before Cust).
		kids := append([]*query.Tree(nil), t.Children...)
		for i := 0; i < len(kids); i++ {
			deepest := i
			for j := i + 1; j < len(kids); j++ {
				if depth(kids[j]) > depth(kids[deepest]) {
					deepest = j
				}
			}
			kids[i], kids[deepest] = kids[deepest], kids[i]
		}
		cur, err := build(kids[0], t.Label)
		if err != nil {
			return nil, err
		}
		for _, kid := range kids[1:] {
			right, err := build(kid, t.Label)
			if err != nil {
				return nil, err
			}
			j := &logical.Join{Left: cur, Right: right, On: sharedKeep(cur, right)}
			p := &logical.Project{Input: j, Attrs: keep}
			cur = &logical.Conf{Input: p, Alg: logical.AlgIndProject, Keep: keep}
		}
		return cur, nil
	}

	inner, err := build(tree, nil)
	if err != nil {
		return nil, err
	}
	// Final independent projection onto the head attributes.
	root := &logical.Conf{Input: inner, Alg: logical.AlgIndProject, Keep: q.Head, Final: true}
	return &built{
		lp:   &logical.Plan{Style: "mystiq", Mode: logical.ModeProb, Root: root},
		tree: tree,
	}, nil
}

// sharedKeep lists the attributes two safe subplans join on: the
// intersection of their top π^ind keep lists, in the left list's order.
func sharedKeep(left, right logical.Node) []string {
	keepOf := func(n logical.Node) []string {
		if c, ok := n.(*logical.Conf); ok {
			return c.Keep
		}
		return nil
	}
	rset := make(map[string]bool)
	for _, a := range keepOf(right) {
		rset[a] = true
	}
	var on []string
	for _, a := range keepOf(left) {
		if rset[a] {
			on = append(on, a)
		}
	}
	return on
}

// safeLeafKeep returns the attributes a safe-plan leaf keeps: parent label
// attributes present in the leaf, then head attributes, both deduplicated.
func safeLeafKeep(q *query.Query, ref query.RelRef, parentLabel []string, head map[string]bool) []string {
	seen := make(map[string]bool)
	var keep []string
	for _, a := range parentLabel {
		if ref.HasAttr(a) && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	for _, a := range ref.Attrs {
		if head[a] && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	return keep
}

// safeKeepAttrs returns an inner safe-plan node's label attributes plus
// head attributes available in its subtree.
func safeKeepAttrs(q *query.Query, t *query.Tree, head map[string]bool) []string {
	inSubtree := make(map[string]bool)
	var walk func(n *query.Tree)
	walk = func(n *query.Tree) {
		if n.IsLeaf() {
			if ref, ok := q.RelByName(n.Leaf.Name); ok {
				for _, a := range ref.Attrs {
					inSubtree[a] = true
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	var keep []string
	seen := make(map[string]bool)
	add := func(a string) {
		if inSubtree[a] && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	if !t.IsLeaf() {
		for _, a := range t.Label {
			add(a)
		}
	} else if ref, ok := q.RelByName(t.Leaf.Name); ok {
		for _, a := range ref.Attrs {
			if head[a] {
				add(a)
			}
		}
	}
	for _, h := range q.Head {
		add(h)
	}
	return keep
}
