package plan

import (
	"math/rand"
	"testing"

	"repro/internal/dtree"
	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/prob"
)

// TestStatsLadderPopulation pins the Stats population contract across every
// plan style and every rung of the exact styles' fallback ladder: whichever
// tier produces the result must report its timings, the operator scan count
// and its own tier counter (OBDD nodes, d-tree steps or Monte Carlo
// samples) — and only its own. Lineage tiers report Scans = 1, the
// lineage-collection grouping pass.
func TestStatsLadderPopulation(t *testing.T) {
	type tc struct {
		name string
		hard bool // run the signature-less hard query instead of introQ
		spec Spec
		tier string // "sortscan" | "safe" | "obdd" | "dtree" | "mc"
	}
	cases := []tc{
		{name: "lazy", spec: Spec{Style: Lazy}, tier: "sortscan"},
		{name: "eager", spec: Spec{Style: Eager}, tier: "sortscan"},
		{name: "hybrid", spec: Spec{Style: Hybrid, HybridPrefix: 2}, tier: "sortscan"},
		{name: "mystiq", spec: Spec{Style: SafeMystiQ}, tier: "safe"},
		{name: "obdd", spec: Spec{Style: OBDD}, tier: "obdd"},
		{name: "dtree", spec: Spec{Style: DTree}, tier: "dtree"},
		{name: "mc", spec: Spec{Style: MonteCarlo, MC: prob.MCOptions{Seed: 1}}, tier: "mc"},
		{name: "auto", spec: Spec{Style: Auto}, tier: "sortscan"},
		// The fallback ladder on the hard query: default budgets land on the
		// OBDD rung; starving the OBDD drops to the d-tree rung; starving
		// both drops to Monte Carlo.
		{name: "ladder-obdd", hard: true, spec: Spec{Style: Lazy}, tier: "obdd"},
		{name: "ladder-dtree", hard: true,
			spec: Spec{Style: Lazy, OBDD: obdd.Options{NodeBudget: 1}}, tier: "dtree"},
		{name: "ladder-mc", hard: true,
			spec: Spec{Style: Lazy, OBDD: obdd.Options{NodeBudget: 1}, DTree: dtree.Options{NodeBudget: 1},
				MC: prob.MCOptions{Seed: 1}}, tier: "mc"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var res *Result
			var err error
			if c.hard {
				res, err = Run(hardDB(rand.New(rand.NewSource(1))), hardQuery(), fd.NewSet(), c.spec)
			} else {
				cat, _ := fig1Catalog()
				res, err = Run(cat, introQ(), tpchFDs(), c.spec)
			}
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.AnswerTuples <= 0 || s.DistinctTuples <= 0 {
				t.Errorf("tuple counts not populated: answers=%d distinct=%d", s.AnswerTuples, s.DistinctTuples)
			}
			// TupleTime alone can round to ~0 on the tiny fixtures, but the
			// run as a whole takes measurable time on every tier.
			if s.TupleTime+s.ProbTime <= 0 {
				t.Errorf("timings not populated: tuple=%v prob=%v", s.TupleTime, s.ProbTime)
			}
			if s.Scans <= 0 {
				t.Errorf("Scans not populated: %d", s.Scans)
			}
			lineageTier := c.tier == "obdd" || c.tier == "dtree" || c.tier == "mc"
			if lineageTier && s.Scans != 1 {
				t.Errorf("lineage tiers report the single grouping pass, got Scans=%d", s.Scans)
			}
			// Exactly the producing tier's counter is set: failed ladder
			// rungs must not leak theirs.
			wantOBDD, wantDTree, wantMC := c.tier == "obdd", c.tier == "dtree", c.tier == "mc"
			if (s.OBDDNodes > 0) != wantOBDD {
				t.Errorf("OBDDNodes=%d, want populated=%v", s.OBDDNodes, wantOBDD)
			}
			if (s.DTreeNodes > 0) != wantDTree {
				t.Errorf("DTreeNodes=%d, want populated=%v", s.DTreeNodes, wantDTree)
			}
			if (s.Samples > 0) != wantMC {
				t.Errorf("Samples=%d, want populated=%v", s.Samples, wantMC)
			}
			if wantOBDD || wantDTree {
				if s.MemoHits+s.MemoMisses <= 0 {
					t.Errorf("%s tier should report memo probes, got hits=%d misses=%d", c.tier, s.MemoHits, s.MemoMisses)
				}
			}
			if c.tier == "mc" && !s.Approximate {
				t.Error("Monte Carlo results must be flagged Approximate")
			}
		})
	}
}

// TestTraceGolden pins the structural execution trace — Trace.Fingerprint,
// the deterministic part of Render — against golden files for every tier,
// including each rung of the fallback ladder. Run with -update after an
// intentional trace change. Durations and loose attributes (batch counts,
// physical operator choice, arena recycling) are excluded by construction,
// so these fixtures are stable across machines and worker counts.
func TestTraceGolden(t *testing.T) {
	cases := []struct {
		name string
		hard bool
		spec Spec
	}{
		{name: "lazy", spec: Spec{Style: Lazy}},
		{name: "mystiq", spec: Spec{Style: SafeMystiQ}},
		{name: "obdd", spec: Spec{Style: OBDD}},
		{name: "dtree", spec: Spec{Style: DTree}},
		{name: "mc", spec: Spec{Style: MonteCarlo, MC: prob.MCOptions{Seed: 1}}},
		{name: "ladder-obdd", hard: true, spec: Spec{Style: Lazy}},
		{name: "ladder-dtree", hard: true, spec: Spec{Style: Lazy, OBDD: obdd.Options{NodeBudget: 1}}},
		{name: "ladder-mc", hard: true,
			spec: Spec{Style: Lazy, OBDD: obdd.Options{NodeBudget: 1}, DTree: dtree.Options{NodeBudget: 1},
				MC: prob.MCOptions{Seed: 1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := c.spec
			spec.Trace = true
			var res *Result
			var err error
			if c.hard {
				res, err = Run(hardDB(rand.New(rand.NewSource(1))), hardQuery(), fd.NewSet(), spec)
			} else {
				cat, _ := fig1Catalog()
				res, err = Run(cat, introQ(), tpchFDs(), spec)
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Trace == nil {
				t.Fatal("Spec.Trace set but Stats.Trace is nil")
			}
			checkGoldenAt(t, "trace", c.name, res.Stats.Trace.Fingerprint())
		})
	}
}

// TestTraceOffByDefault: without Spec.Trace no trace is collected — the
// default path must not pay for span bookkeeping.
func TestTraceOffByDefault(t *testing.T) {
	cat, _ := fig1Catalog()
	res, err := Run(cat, introQ(), tpchFDs(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace != nil {
		t.Fatal("Stats.Trace populated without Spec.Trace")
	}
}
