package plan

import (
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/query"
)

// runMonteCarlo is the approximate plan: answer tuples are computed exactly
// like the lazy plan (greedy selective join order, all V/P columns carried
// through), then the Monte Carlo confidence operator groups them into
// per-answer lineage DNFs and estimates each answer's confidence with the
// (ε, δ) samplers of internal/prob, fanning answers out to a worker pool.
// No signature is required, so this plan accepts every conjunctive query —
// including the #P-hard ones every exact style must reject. note annotates
// the plan line when the run is a fallback from an exact style.
func runMonteCarlo(c *Catalog, q *query.Query, spec Spec, note string) (*Result, error) {
	order := LazyOrder(c, q)
	t0 := time.Now()
	answer, err := answerPipeline(c, q, order)
	if err != nil {
		return nil, err
	}
	tupleTime := time.Since(t0)

	t1 := time.Now()
	out, mcs, err := conf.MonteCarlo(answer, spec.MC)
	if err != nil {
		return nil, err
	}
	probTime := time.Since(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan: fmt.Sprintf("mc%s: %s; estimate conf of %d answers (%d clauses, %d samples, %d exact)",
				note, describeOrder(order), mcs.OutputTuples, mcs.Clauses, mcs.Samples, mcs.ExactAnswers),
			Signature:      "(approximate: Monte Carlo over lineage, no signature)",
			TupleTime:      tupleTime,
			ProbTime:       probTime,
			AnswerTuples:   int64(answer.Len()),
			DistinctTuples: int64(out.Len()),
			Approximate:    true,
			Samples:        mcs.Samples,
			Epsilon:        mcs.MaxEpsilon,
		},
	}, nil
}
