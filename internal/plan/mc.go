package plan

import (
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// finishMonteCarlo is the Monte Carlo confidence tier: the answer tuples
// were computed exactly like the lazy plan (greedy selective join order,
// all V/P columns carried through), and each distinct answer's lineage DNF
// is estimated with the (ε, δ) samplers of internal/prob, fanning answers
// out to a worker pool. No signature is required, so this tier accepts
// every conjunctive query — including the #P-hard ones every exact style
// must reject. It serves both the MonteCarlo style and the last rung of the
// exact styles' fallback chain (lower.go), which has the answer (and its
// collected lineage) in hand from its OBDD attempt. l may be nil, in which
// case the lineage is collected here; probSpent carries the caller's
// already-spent confidence-computation time (the aborted OBDD compile) so
// Stats.ProbTime reports the real cost of the fallback. note annotates the
// plan line when the run is a fallback from an exact style.
func finishMonteCarlo(ex exec, sp *obs.Span, q *query.Query, spec Spec, note string, order []query.RelRef, answer *table.Relation, l *conf.Lineage, tupleTime, probSpent time.Duration) (*Result, error) {
	t1 := statsNow()
	if l == nil {
		var err error
		l, err = conf.CollectLineage(answer)
		if err != nil {
			return nil, err
		}
	}
	out, mcs, err := conf.MonteCarloLineage(ex.ctx, l, spec.MC)
	if err != nil {
		return nil, err
	}
	probTime := probSpent + statsSince(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	sp.Int("answers", mcs.OutputTuples).Int("clauses", mcs.Clauses).Int("vars", mcs.Vars).Int("dedup_rows", mcs.DupRows)
	sp.Int("samples", mcs.Samples).Int("max_answer_samples", mcs.MaxAnswerSamples)
	sp.Int("exact", mcs.ExactAnswers).Int("capped", mcs.CappedAnswers).Float("epsilon", mcs.MaxEpsilon)
	if mcs.CappedAnswers > 0 {
		sp.Str("early_stop", "sample cap")
	} else {
		sp.Str("early_stop", "target met")
	}
	sp.SetDur(probTime)
	stats := Stats{
		Plan: fmt.Sprintf("mc%s: %s; estimate conf of %d answers (%d clauses, %d samples, %d exact)",
			note, describeOrder(order), mcs.OutputTuples, mcs.Clauses, mcs.Samples, mcs.ExactAnswers),
		Signature:      "(approximate: Monte Carlo over lineage, no signature)",
		TupleTime:      tupleTime,
		ProbTime:       probTime,
		AnswerTuples:   int64(answer.Len()),
		DistinctTuples: int64(out.Len()),
		Scans:          1, // the lineage-collection grouping pass
		Approximate:    true,
		Samples:        mcs.Samples,
		Epsilon:        mcs.MaxEpsilon,
	}
	if mcs.StoppedAnswers > 0 {
		markDegraded(&stats, "deadline")
		sp.Int("deadline_stopped", mcs.StoppedAnswers)
	}
	return &Result{Rows: out, Stats: stats}, nil
}
