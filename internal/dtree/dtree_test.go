package dtree_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/difftest"
	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/prob"
)

func TestTerminals(t *testing.T) {
	a := prob.NewAssignment()
	a.MustSet(1, 0.3)
	a.MustSet(2, 0.4)

	if res := dtree.Prob(&prob.DNF{}, a, dtree.Options{}); !res.Exact || res.P != 0 {
		t.Errorf("empty DNF: %+v, want exact 0", res)
	}
	top := prob.NewDNF(prob.Clause{})
	if res := dtree.Prob(top, a, dtree.Options{}); !res.Exact || res.P != 1 {
		t.Errorf("⊤ (empty clause): %+v, want exact 1", res)
	}
	one := prob.NewDNF(prob.NewClause(1, 2))
	if res := dtree.Prob(one, a, dtree.Options{}); !res.Exact || res.P != 0.3*0.4 {
		t.Errorf("single clause: %+v, want exact %v", res, 0.3*0.4)
	}
	// Terminals consume no decomposition steps, so even a budget of 1
	// resolves them exactly.
	if res := dtree.Prob(one, a, dtree.Options{NodeBudget: 1}); !res.Exact {
		t.Errorf("single clause under budget 1: %+v, want exact", res)
	}
}

// TestDecompositionRules pins each rule on the worked example from the
// package doc: ψ = x₁y₁ ∨ x₁y₂ ∨ x₂y₂ ∨ ab decomposes by independent-OR
// (split off ab), independent-AND (collapse ab), and one Shannon split —
// and the result matches the Shannon-expansion oracle exactly.
func TestDecompositionRules(t *testing.T) {
	// Vars: x1=1 x2=2 y1=3 y2=4 a=5 b=6.
	d := prob.NewDNF(
		prob.NewClause(1, 3),
		prob.NewClause(1, 4),
		prob.NewClause(2, 4),
		prob.NewClause(5, 6),
	)
	a := prob.NewAssignment()
	for v, p := range map[prob.Var]float64{1: 0.5, 2: 0.6, 3: 0.7, 4: 0.2, 5: 0.9, 6: 0.1} {
		a.MustSet(v, p)
	}
	truth, err := prob.ProbByWorlds(d, a)
	if err != nil {
		t.Fatal(err)
	}
	res := dtree.Prob(d, a, dtree.Options{})
	if !res.Exact {
		t.Fatalf("worked example did not resolve exactly: %+v", res)
	}
	if !prob.ApproxEqual(res.P, truth, 1e-9) {
		t.Errorf("P = %.12f, worlds oracle %.12f", res.P, truth)
	}
	// ab splits off by independent-OR and collapses by independent-AND
	// without branching; the x/y component needs one Shannon split on x₁
	// whose cofactors decompose by the independence rules. The step count
	// pins that shape: far fewer steps than the 2^6 world enumeration.
	if res.Nodes == 0 || res.Nodes > 12 {
		t.Errorf("decomposition took %d steps, want a small nonzero count", res.Nodes)
	}
}

// TestDifferential runs the repo-wide harness over random lineage-shaped
// formulas: worlds oracle vs Shannon vs OBDD vs d-tree vs Monte Carlo.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 60; i++ {
		d, a := difftest.RandomDNF(rng, 12)
		if err := difftest.Check(d, a); err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
	}
}

// TestBlocksClassOBDDBlowup is the acceptance scenario: on the interleaved
// blocks class the OBDD tier exceeds its default node budget (width ~3^k
// under the occurrence order) while the d-tree tier — order-free — splits
// the blocks by independent-OR and stays exact, matching the closed form.
func TestBlocksClassOBDDBlowup(t *testing.T) {
	const k = 12
	d, a, truth := benchutil.BlocksDNF(k)

	or, err := obdd.Prob(d, a, obdd.OccurrenceOrder(d, nil), obdd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if or.Exact {
		t.Fatalf("OBDD compiled the %d-block class exactly (%d nodes) — class no longer a blow-up", k, or.Nodes)
	}
	if truth < or.Lo-1e-9 || truth > or.Hi+1e-9 {
		t.Errorf("OBDD bounds [%.9f, %.9f] do not certify truth %.9f", or.Lo, or.Hi, truth)
	}

	dr := dtree.Prob(d, a, dtree.Options{})
	if !dr.Exact {
		t.Fatalf("d-tree did not resolve the %d-block class exactly: %+v", k, dr)
	}
	if !prob.ApproxEqual(dr.P, truth, 1e-9) {
		t.Errorf("d-tree P = %.12f, closed form %.12f", dr.P, truth)
	}
	if dr.Nodes >= or.Nodes {
		t.Errorf("d-tree used %d steps vs OBDD's %d — independence detection buys nothing here?", dr.Nodes, or.Nodes)
	}
}

// TestBoundsMonotoneInBudget: growing the step budget never loosens the
// certified interval, and the bounds always contain the exact value.
func TestBoundsMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := &prob.DNF{}
	a := prob.NewAssignment()
	for v := 1; v <= 20; v++ {
		a.MustSet(prob.Var(v), 0.05+0.9*rng.Float64())
	}
	for i := 0; i < 30; i++ {
		w := 2 + rng.Intn(3)
		vars := make([]prob.Var, 0, w)
		for j := 0; j < w; j++ {
			vars = append(vars, prob.Var(1+rng.Intn(20)))
		}
		d.Add(prob.NewClause(vars...))
	}
	exact := dtree.Prob(d, a, dtree.Options{})
	if !exact.Exact {
		t.Fatalf("full budget did not resolve exactly: %+v", exact)
	}
	prevLo, prevHi := 0.0, 1.0
	for budget := 1; budget <= 1<<12; budget *= 2 {
		res := dtree.Prob(d, a, dtree.Options{NodeBudget: budget})
		if res.Lo > exact.P+1e-9 || res.Hi < exact.P-1e-9 {
			t.Fatalf("budget %d: [%.9f, %.9f] does not contain exact %.9f", budget, res.Lo, res.Hi, exact.P)
		}
		if res.Lo < prevLo-1e-12 || res.Hi > prevHi+1e-12 {
			t.Fatalf("budget %d loosened the interval: [%.9f, %.9f] after [%.9f, %.9f]",
				budget, res.Lo, res.Hi, prevLo, prevHi)
		}
		prevLo, prevHi = res.Lo, res.Hi
		if res.Exact {
			return // converged; later budgets are identical
		}
	}
	t.Fatal("never converged to exact within 2^12 steps")
}

// TestTargetWidth: anytime mode stops at the first pass whose certified
// interval is narrow enough, spending fewer steps than full compilation.
func TestTargetWidth(t *testing.T) {
	// 40 blocks keep the decomposition busy (several thousand steps) so the
	// progressive passes have room to stop early.
	d, a, truth := benchutil.BlocksDNF(40)
	res := dtree.Prob(d, a, dtree.Options{TargetWidth: 0.5})
	if !res.Exact && res.Hi-res.Lo > 0.5 {
		t.Fatalf("TargetWidth 0.5 returned width %g: %+v", res.Hi-res.Lo, res)
	}
	if truth < res.Lo-1e-9 || truth > res.Hi+1e-9 {
		t.Fatalf("[%.9f, %.9f] does not certify truth %.9f", res.Lo, res.Hi, truth)
	}
	// A width of 0 must behave like plain full-budget compilation.
	full := dtree.Prob(d, a, dtree.Options{})
	if !full.Exact || !prob.ApproxEqual(full.P, truth, 1e-9) {
		t.Fatalf("full compile: %+v, closed form %.12f", full, truth)
	}
}

// TestBuilderReset: a pooled builder reused across formulas via Reset gives
// bit-identical results to fresh builders — the contract the per-worker
// pooling in internal/conf relies on.
func TestBuilderReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type formula struct {
		d *prob.DNF
		a *prob.Assignment
	}
	var fs []formula
	for i := 0; i < 20; i++ {
		d, a := difftest.RandomDNF(rng, 12)
		fs = append(fs, formula{d, a})
	}
	b := dtree.NewBuilder(0)
	for i, f := range fs {
		fresh := dtree.Prob(f.d, f.a, dtree.Options{})
		b.Reset(0)
		pooled := dtree.ProbWith(b, f.d, f.a, dtree.Options{})
		// HdrRecycled is per-builder state (the scratch free list survives
		// Reset — that is the point of pooling), so it legitimately differs
		// between a fresh and a reused builder; everything else must match.
		fresh.HdrRecycled, pooled.HdrRecycled = 0, 0
		if fresh != pooled {
			t.Fatalf("formula %d: fresh %+v != pooled %+v", i, fresh, pooled)
		}
	}
}

// TestBoundedMidpoint: a bounded result reports the interval midpoint so
// |P - truth| ≤ (Hi-Lo)/2 — the contract the conf layer's stats rely on.
func TestBoundedMidpoint(t *testing.T) {
	d, a, truth := benchutil.BlocksDNF(12)
	res := dtree.Prob(d, a, dtree.Options{NodeBudget: 3})
	if res.Exact {
		t.Fatalf("budget 3 resolved a 12-block class exactly: %+v", res)
	}
	if res.P != (res.Lo+res.Hi)/2 {
		t.Errorf("P = %v is not the midpoint of [%v, %v]", res.P, res.Lo, res.Hi)
	}
	if math.Abs(res.P-truth) > (res.Hi-res.Lo)/2+1e-12 {
		t.Errorf("midpoint error %g exceeds half-width %g", math.Abs(res.P-truth), (res.Hi-res.Lo)/2)
	}
}
