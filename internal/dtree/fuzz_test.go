package dtree_test

import (
	"testing"

	"repro/internal/difftest"
)

// FuzzCompile feeds fuzzer-mutated byte strings through difftest.DecodeDNF
// (≤ 12 variables, so the possible-worlds oracle applies) and runs the
// compile-tier differential battery: Shannon oracle, OBDD and d-tree — full
// and starved budgets — against prob.ProbByWorlds. Any decomposition-rule
// bug that produces a wrong exact value, a non-certifying interval or a
// nondeterministic result is a crash.
func FuzzCompile(f *testing.F) {
	for _, seed := range [][]byte{
		{0x11, 1, 2, 0, 3, 4},                   // two disjoint clauses: independent-OR
		{0x42, 1, 2, 0, 1, 3, 0, 1, 4},          // shared x1 in every clause: independent-AND
		{0x07, 1, 3, 0, 1, 4, 0, 2, 4, 0, 5, 6}, // the package-doc worked example: all three rules
		{0x99, 1, 0, 1, 2, 0, 2, 3, 0, 3, 1},    // chained overlaps: Shannon splits
		{0xff, 12, 24, 36, 0, 1},                // bytes that collapse to the same variable mod 12
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, a, ok := difftest.DecodeDNF(data)
		if !ok {
			return
		}
		if err := difftest.CheckCompile(d, a); err != nil {
			t.Fatal(err)
		}
	})
}
