// Package dtree compiles DNF lineage by decomposition trees (d-trees) — the
// order-free exact tier between OBDD compilation (internal/obdd, exact only
// while the diagram fits a node budget under one fixed variable order) and
// Monte Carlo estimation (internal/prob). It follows the SPROUT authors'
// follow-on work on approximate confidence computation: instead of fixing a
// global variable order up front, each residual formula is decomposed by
// whichever structural rule applies, and variable branching is a last
// resort.
//
// Three decomposition rules are tried in order on every residual clause set
// ψ (a positive DNF):
//
//  1. Independent-AND: variables occurring in *every* clause factor out —
//     Pr[ψ] = Π_{v∈common} p(v) · Pr[ψ'] where ψ' strips the common
//     variables from each clause. (A clause consisting only of common
//     variables makes ψ' ≡ ⊤, so Pr[ψ] is the plain product.)
//  2. Independent-OR: if the clauses partition into variable-disjoint
//     components ψ = ψ₁ ∨ … ∨ ψ_k (connected components of the
//     clause-variable graph), the disjuncts are independent events —
//     Pr[ψ] = 1 - Π_i (1 - Pr[ψ_i]).
//  3. Exclusive-OR by Shannon cofactoring: when neither independence rule
//     applies, split on the most frequent variable x (ties to the lowest
//     id). The two branches {x ∧ ψ|_x, ¬x ∧ ψ|_{¬x}} are mutually
//     exclusive — on positive DNF this variable split is exactly how
//     exclusive-OR decomposition manifests — so
//     Pr[ψ] = p(x)·Pr[ψ|_x] + (1-p(x))·Pr[ψ|_{¬x}].
//
// Worked example: ψ = x₁y₁ ∨ x₁y₂ ∨ x₂y₂ ∨ ab. Independent-OR splits off
// the component {ab} (disjoint variables), which independent-AND collapses
// to p(a)p(b). The remaining component shares y₂ across two clauses but no
// variable across all three, so rule 3 splits on x₁ (most frequent): the
// positive cofactor y₁ ∨ y₂ ∨ x₂y₂ and the negative cofactor x₂y₂ both
// decompose by the independence rules alone. No global variable order was
// ever chosen — which is why lineage whose OBDD explodes under every
// occurrence-derived order (e.g. many variable-disjoint blocks whose ids
// interleave) still compiles exactly here: rule 2 splits the blocks apart
// before any branching happens.
//
// Budgeted compilation: every applied decomposition rule counts one step
// against Options.NodeBudget. When the budget is exhausted, the remaining
// residuals are closed with the cheap clause-weight bounds
//
//	max_c Π_{v∈c} p(v)  ≤  Pr[ψ]  ≤  min(1, Σ_c Π_{v∈c} p(v))
//
// and the bounds combine monotonically through every rule on the way back
// up, yielding a certified deterministic interval [Lo, Hi] ∋ Pr[φ] (the
// same reporting surface as the OBDD tier). Each rule tightens: the
// combined children's cheap bounds always nest inside the parent's, so a
// larger budget never loosens the interval, and the depth-first expansion
// order is a function of the formula alone, so results are deterministic.
//
// The implementation reuses internal/obdd's allocation idioms: residual
// clause sets are interned in an FNV-1a-keyed memo with structural-equality
// collision chains, clause-set headers are carved from a per-builder arena
// and recycled through a free list, and a Builder is reusable across
// formulas via Reset — batch fan-outs (internal/conf's per-worker pooling)
// pay the map allocations once per worker instead of once per answer.
package dtree

import (
	"slices"

	"repro/internal/prob"
)

// DefaultNodeBudget caps the number of decomposition steps when
// Options.NodeBudget is zero. Decomposition steps are cheaper than OBDD
// nodes on independence-heavy lineage (one step can split off a whole
// component), so the OBDD tier's default is a comfortable ceiling here too.
const DefaultNodeBudget = 1 << 17

// Options tunes d-tree-based probability computation.
type Options struct {
	// NodeBudget caps the number of decomposition steps; 0 means
	// DefaultNodeBudget. Residuals beyond the budget contribute cheap
	// clause-weight bounds instead of exact values.
	NodeBudget int
	// TargetWidth accepts an early answer once hi-lo ≤ TargetWidth:
	// compilation proceeds in passes of geometrically growing step budgets
	// (exact sub-results are memoized across passes) and stops at the
	// first pass whose certified interval is narrow enough. 0 compiles
	// under the full budget in one pass.
	TargetWidth float64
	// Stop, when non-nil, is polled at each decomposition step; once it
	// reports true the remaining residuals resolve to cheap clause-weight
	// bounds, as if the step budget were exhausted, and the result reports
	// Stopped=true. The planner arms it with a deadline-watermark probe.
	Stop func() bool
}

func (o Options) budget() int {
	if o.NodeBudget <= 0 {
		return DefaultNodeBudget
	}
	return o.NodeBudget
}

// Result is the outcome of d-tree-based probability computation for one
// formula — the same surface as the OBDD tier's obdd.Result.
type Result struct {
	// Exact reports whether P is the exact probability. When false, only
	// the certified bounds Lo ≤ Pr[φ] ≤ Hi are guaranteed and P is their
	// midpoint (so |P - Pr[φ]| ≤ (Hi-Lo)/2).
	Exact bool
	// P is the exact probability, or the bound midpoint.
	P float64
	// Lo and Hi bound the probability; Lo == Hi == P for exact results.
	Lo, Hi float64
	// Nodes counts the decomposition steps applied (across every pass in
	// TargetWidth mode) — the compilation effort, comparable to the OBDD
	// tier's node count.
	Nodes int
	// MemoHits and MemoMisses count exact-residual memo probes during
	// decomposition (summed across passes in TargetWidth mode).
	MemoHits, MemoMisses int64
	// HdrRecycled counts clause-set headers served from the builder's
	// free list instead of fresh arena storage.
	HdrRecycled int64
	// Stopped reports that Options.Stop cut decomposition short: the
	// bounds are certified but work was abandoned for time, not budget.
	Stopped bool
}

// Builder holds the reusable state of d-tree compilation: the interned
// exact-residual memo, the clause-header arena with its scratch free list,
// and the literal arena stripped clauses are rebuilt into. A Builder is
// reusable across formulas via Reset; because the memo caches probabilities,
// it is bound to one (formula, assignment) pair per Reset.
type Builder struct {
	budget int
	steps  int
	a      *prob.Assignment

	// stop/stopped: the deadline probe armed by probWith from
	// Options.Stop, and its latched outcome for the current pass.
	stop    func() bool
	stopped bool

	memo     map[uint64]memoEntry
	memoOver map[uint64][]memoEntry
	scratch  [][][]int32
	hdrs     [][]int32
	lits     []int32

	count map[int32]int // Shannon variable-frequency scratch

	// Effort counters, cumulative across Resets (ProbWith records per-call
	// deltas into Result), mirroring obdd.Builder's.
	memoHits    int64
	memoMisses  int64
	hdrRecycled int64
}

// Counters returns the builder's cumulative effort counters: exact-residual
// memo hits and misses, and recycled clause-set headers. They survive
// Reset, so per-formula figures are deltas around a ProbWith call.
func (b *Builder) Counters() (memoHits, memoMisses, hdrRecycled int64) {
	return b.memoHits, b.memoMisses, b.hdrRecycled
}

// memoEntry interns one exactly resolved residual clause set: the canonical
// set itself (for structural equality under its FNV hash) and its
// probability.
type memoEntry struct {
	cls [][]int32
	p   float64
}

// NewBuilder creates a builder with the given step budget (0 means
// DefaultNodeBudget).
func NewBuilder(budget int) *Builder {
	b := &Builder{
		memo:  make(map[uint64]memoEntry),
		count: make(map[int32]int),
	}
	b.Reset(budget)
	return b
}

// Reset re-arms the builder for a new formula and budget: the memo is
// cleared but keeps its storage, like obdd.Builder.Reset, so per-worker
// builders in a batch fan-out pay the map allocations once.
func (b *Builder) Reset(budget int) {
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	if b.memo == nil {
		b.memo = make(map[uint64]memoEntry)
		b.count = make(map[int32]int)
	}
	b.budget = budget
	b.steps = 0
	b.a = nil
	clear(b.memo)
	clear(b.memoOver)
}

// Steps returns the decomposition steps applied since the last Reset.
func (b *Builder) Steps() int { return b.steps }

// stopFired polls the armed Stop probe, latching the outcome so one firing
// degrades every remaining residual of the pass.
func (b *Builder) stopFired() bool {
	if b.stopped {
		return true
	}
	if b.stop != nil && b.stop() {
		b.stopped = true
		return true
	}
	return false
}

// Prob computes Pr[d] by d-tree decomposition: exact when the formula
// decomposes within the step budget, certified [lo, hi] bounds otherwise.
// The result is a deterministic function of (d, a, o) — no variable order
// is involved.
func Prob(d *prob.DNF, a *prob.Assignment, o Options) Result {
	return ProbWith(NewBuilder(o.budget()), d, a, o)
}

// ProbWith is Prob over a caller-supplied builder (NewBuilder or Reset),
// which exists so a batch of per-answer compilations can reuse one
// builder's memo and arenas across answers (Reset between them); the result
// is identical to Prob's. The builder is left holding the last formula's
// memo — Reset before reuse.
func ProbWith(b *Builder, d *prob.DNF, a *prob.Assignment, o Options) Result {
	hits0, misses0, rec0 := b.Counters()
	res := b.probWith(d, a, o)
	hits, misses, rec := b.Counters()
	res.MemoHits, res.MemoMisses, res.HdrRecycled = hits-hits0, misses-misses0, rec-rec0
	return res
}

func (b *Builder) probWith(d *prob.DNF, a *prob.Assignment, o Options) Result {
	b.a = a
	b.stop = o.Stop
	b.stopped = false
	defer func() { b.stop = nil }()
	budget := o.budget()
	if o.TargetWidth <= 0 {
		return b.run(d, budget)
	}
	// Anytime mode: geometrically growing passes, stopping at the first
	// whose interval is narrow enough. Exact residuals memoized by an
	// earlier pass are free in later ones, so the repeated prefix work is
	// cheap; Nodes accumulates the total effort.
	total := 0
	for pass := 1 << 10; ; pass *= 4 {
		if pass >= budget {
			res := b.run(d, budget)
			res.Nodes += total
			return res
		}
		res := b.run(d, pass)
		res.Nodes += total
		if res.Exact || res.Hi-res.Lo <= o.TargetWidth || res.Stopped {
			return res
		}
		total = res.Nodes
	}
}

// run performs one compilation pass under the given step budget.
func (b *Builder) run(d *prob.DNF, budget int) Result {
	b.budget = budget
	b.steps = 0
	lo, hi := b.node(b.lower(d))
	res := Result{Lo: lo, Hi: hi, Nodes: b.steps, Stopped: b.stopped && lo != hi}
	if lo == hi {
		res.Exact = true
		res.P = lo
	} else {
		res.P = (lo + hi) / 2
	}
	return res
}

// lower rewrites the DNF as a canonical clause set: valid variables only,
// each clause ascending (prob.Clause's invariant), clauses sorted
// lexicographically and deduplicated. The clause-set header comes from the
// builder's arena; literal storage aliases the input clauses (never
// mutated).
func (b *Builder) lower(d *prob.DNF) [][]int32 {
	cls := b.getScratch(len(d.Clauses))
	for _, c := range d.Clauses {
		valid := 0
		for _, v := range c {
			if v.Valid() {
				valid++
			}
		}
		lc := b.allocLits(valid)
		for _, v := range c {
			if v.Valid() {
				lc = append(lc, int32(v))
			}
		}
		cls = append(cls, lc)
	}
	return normalize(cls)
}

// p returns the marginal of a variable (by raw id).
func (b *Builder) p(v int32) float64 { return b.a.P(prob.Var(v)) }

// weight is Π p over a clause's variables — the probability that one clause
// is true on its own.
func (b *Builder) weight(c []int32) float64 {
	w := 1.0
	for _, v := range c {
		w *= b.p(v)
	}
	return w
}

// node resolves one residual clause set to certified bounds (lo == hi means
// exact). It takes ownership of the cls header: terminals, memo hits and
// budget stops recycle it; exactly resolved sets retain it in the memo.
func (b *Builder) node(cls [][]int32) (lo, hi float64) {
	if len(cls) == 0 {
		b.putScratch(cls)
		return 0, 0
	}
	for _, c := range cls {
		if len(c) == 0 {
			b.putScratch(cls)
			return 1, 1
		}
	}
	if len(cls) == 1 {
		w := b.weight(cls[0])
		b.putScratch(cls)
		return w, w
	}
	h := hashClauses(cls)
	if p, ok := b.memoGet(h, cls); ok {
		b.putScratch(cls)
		return p, p
	}
	if b.steps >= b.budget || b.stopFired() {
		lo, hi = b.cheapBounds(cls)
		b.putScratch(cls)
		return lo, hi
	}
	b.steps++
	lo, hi = b.decompose(cls)
	if lo == hi {
		b.memoPut(h, cls, lo) // retains the header
	} else {
		b.putScratch(cls)
	}
	return lo, hi
}

// decompose applies the first matching decomposition rule:
// independent-AND, independent-OR, then the exclusive-OR variable split.
func (b *Builder) decompose(cls [][]int32) (lo, hi float64) {
	// Rule 1: independent-AND — factor out the variables common to every
	// clause.
	if common := commonVars(cls); len(common) > 0 {
		w := 1.0
		for _, v := range common {
			w *= b.p(v)
		}
		res, resTrue := b.stripAll(cls, common)
		if resTrue {
			return w, w
		}
		lo, hi = b.node(res)
		return w * lo, w * hi
	}
	// Rule 2: independent-OR — variable-disjoint components are
	// independent events.
	if comps := b.components(cls); comps != nil {
		cl, ch := 1.0, 1.0
		for _, comp := range comps {
			lo, hi = b.node(comp)
			cl *= 1 - lo
			ch *= 1 - hi
		}
		return 1 - cl, 1 - ch
	}
	// Rule 3: exclusive-OR via Shannon cofactoring on the most frequent
	// variable.
	v := b.pickVar(cls)
	p := b.p(v)
	pos, posTrue := b.cofactorPos(cls, v)
	l1, h1 := 1.0, 1.0
	if !posTrue {
		l1, h1 = b.node(pos)
	}
	l0, h0 := b.node(b.cofactorNeg(cls, v))
	return p*l1 + (1-p)*l0, p*h1 + (1-p)*h0
}

// commonVars returns the variables present in every clause (ascending).
// Clauses are sorted variable lists, so a running intersection suffices.
func commonVars(cls [][]int32) []int32 {
	common := cls[0]
	for _, c := range cls[1:] {
		if len(common) == 0 {
			return nil
		}
		common = intersect(common, c)
	}
	return common
}

// intersect intersects two ascending lists; allocation happens only while
// matches survive (commonVars short-circuits once the intersection empties,
// which is the overwhelmingly common outcome).
func intersect(a, c []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		switch {
		case a[i] == c[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < c[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// stripAll removes the common variables from every clause (they are present
// in each by construction). resTrue reports that some clause consisted only
// of common variables — the residual is ⊤.
func (b *Builder) stripAll(cls [][]int32, common []int32) (res [][]int32, resTrue bool) {
	res = b.getScratch(len(cls))
	for _, c := range cls {
		if len(c) == len(common) {
			b.putScratch(res)
			return nil, true
		}
		nc := b.allocLits(len(c) - len(common))
		j := 0
		for _, v := range c {
			if j < len(common) && common[j] == v {
				j++
				continue
			}
			nc = append(nc, v)
		}
		res = append(res, nc)
	}
	return normalize(res), false
}

// components partitions the clause set into variable-disjoint connected
// components via union-find over clause indexes. It returns nil when the
// set is connected (rule does not apply); otherwise one header per
// component, components ordered by their smallest clause index and clauses
// in their original (canonical) order — fully deterministic.
func (b *Builder) components(cls [][]int32) [][][]int32 {
	parent := make([]int, len(cls))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	clear(b.count) // reused as the variable → first-owning-clause map
	owner := b.count
	for i, c := range cls {
		for _, v := range c {
			if o, ok := owner[v]; ok {
				ri, ro := find(i), find(o)
				if ri != ro {
					parent[ri] = ro
				}
			} else {
				owner[v] = i
			}
		}
	}
	roots := make(map[int]int) // root → component position
	n := 0
	for i := range cls {
		r := find(i)
		if _, ok := roots[r]; !ok {
			roots[r] = n
			n++
		}
	}
	if n <= 1 {
		return nil
	}
	comps := make([][][]int32, n)
	for i := range comps {
		comps[i] = b.getScratch(len(cls))
	}
	for i, c := range cls {
		k := roots[find(i)]
		comps[k] = append(comps[k], c)
	}
	return comps
}

// pickVar returns the most frequent variable, ties broken by the lowest id
// — the same branching heuristic as prob.DNF's Shannon oracle.
func (b *Builder) pickVar(cls [][]int32) int32 {
	clear(b.count)
	for _, c := range cls {
		for _, v := range c {
			b.count[v]++
		}
	}
	var best int32
	bestN := -1
	for v, n := range b.count {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// cofactorPos builds ψ|_v: clauses containing v lose it, the rest pass
// through; posTrue short-circuits when a clause becomes empty.
func (b *Builder) cofactorPos(cls [][]int32, v int32) (pos [][]int32, posTrue bool) {
	pos = b.getScratch(len(cls))
	for _, c := range cls {
		if i, ok := slices.BinarySearch(c, v); ok {
			if len(c) == 1 {
				b.putScratch(pos)
				return nil, true
			}
			nc := b.allocLits(len(c) - 1)
			nc = append(nc, c[:i]...)
			nc = append(nc, c[i+1:]...)
			pos = append(pos, nc)
		} else {
			pos = append(pos, c)
		}
	}
	return normalize(pos), false
}

// cofactorNeg builds ψ|_{¬v}: clauses containing v vanish.
func (b *Builder) cofactorNeg(cls [][]int32, v int32) [][]int32 {
	neg := b.getScratch(len(cls))
	for _, c := range cls {
		if _, ok := slices.BinarySearch(c, v); !ok {
			neg = append(neg, c)
		}
	}
	return neg // subsequence of a canonical set: already canonical
}

// cheapBounds bounds Pr[ψ] from the clause weights alone: any one clause
// implies ψ (max lower-bounds it), the union bound caps it.
func (b *Builder) cheapBounds(cls [][]int32) (lo, hi float64) {
	sum := 0.0
	for _, c := range cls {
		w := b.weight(c)
		if w > lo {
			lo = w
		}
		sum += w
	}
	if sum > 1 {
		sum = 1
	}
	return lo, sum
}

// hashClauses is FNV-1a (prob's shared primitives) over the canonical
// clause set — clause literals in order with a separator per clause
// boundary. Collisions resolve by structural equality, so hash quality only
// affects chain length.
func hashClauses(cls [][]int32) uint64 {
	h := prob.FNVInit()
	for _, c := range cls {
		for _, l := range c {
			h = prob.FNVUint32(h, uint32(l))
		}
		h = prob.FNVByte(h, 0xff)
	}
	return h
}

// memoGet looks a canonical clause set up in the interned exact memo.
func (b *Builder) memoGet(h uint64, cls [][]int32) (float64, bool) {
	e, ok := b.memo[h]
	if !ok {
		b.memoMisses++
		return 0, false
	}
	if equalClauseSets(e.cls, cls) {
		b.memoHits++
		return e.p, true
	}
	for _, o := range b.memoOver[h] {
		if equalClauseSets(o.cls, cls) {
			b.memoHits++
			return o.p, true
		}
	}
	b.memoMisses++
	return 0, false
}

// memoPut interns an exactly resolved clause set. The common case stores
// the entry inline in the map; only genuine hash collisions between
// distinct sets allocate an overflow chain.
func (b *Builder) memoPut(h uint64, cls [][]int32, p float64) {
	if _, ok := b.memo[h]; !ok {
		b.memo[h] = memoEntry{cls: cls, p: p}
		return
	}
	if b.memoOver == nil {
		b.memoOver = make(map[uint64][]memoEntry)
	}
	b.memoOver[h] = append(b.memoOver[h], memoEntry{cls: cls, p: p})
}

// Arena sizing, shared with internal/obdd's idiom.
const (
	hdrArenaBlock = 4096
	litArenaBlock = 8192
)

// getScratch returns a clause-set header with room for n clauses: a
// recycled one from the free list when it fits, otherwise a slice of the
// header arena. Headers retained by the memo keep their arena storage;
// recycled ones come back through putScratch.
func (b *Builder) getScratch(n int) [][]int32 {
	if k := len(b.scratch); k > 0 {
		if s := b.scratch[k-1]; cap(s) >= n {
			b.scratch = b.scratch[:k-1]
			b.hdrRecycled++
			return s[:0]
		}
	}
	if len(b.hdrs) < n {
		size := hdrArenaBlock
		if n > size {
			size = n
		}
		b.hdrs = make([][]int32, size)
	}
	s := b.hdrs[:0:n]
	b.hdrs = b.hdrs[n:]
	return s
}

// putScratch recycles a clause-set header whose contents are dead.
func (b *Builder) putScratch(s [][]int32) {
	if cap(s) > 0 {
		b.scratch = append(b.scratch, s)
	}
}

// allocLits carves literal storage for one rebuilt clause from the literal
// arena (never recycled within a formula: stripped clauses may be retained
// by the memo).
func (b *Builder) allocLits(n int) []int32 {
	if len(b.lits) < n {
		size := litArenaBlock
		if n > size {
			size = n
		}
		b.lits = make([]int32, size)
	}
	s := b.lits[:0:n]
	b.lits = b.lits[n:]
	return s
}

// normalize sorts clauses lexicographically and drops duplicates, making
// residual clause sets canonical regardless of the decomposition path that
// produced them.
func normalize(cls [][]int32) [][]int32 {
	slices.SortFunc(cls, cmpClause)
	out := cls[:0]
	for i, c := range cls {
		if i > 0 && equalClause(cls[i-1], c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func cmpClause(a, b []int32) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func equalClause(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalClauseSets(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalClause(a[i], b[i]) {
			return false
		}
	}
	return true
}
