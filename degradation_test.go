// Degradation-contract tests: a run that hits its deadline watermark or
// memory budget must complete in a reduced mode — certified bounds, early
// spills, grace joins — with Stats.Degraded set, instead of failing with
// context.DeadlineExceeded or an OOM. The certified bounds are checked
// against fault-free exact confidences of the same queries.
package sprout_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/tpch"
)

// headKey renders the head values of an answer row (everything but the
// trailing confidence column) as a comparison key.
func headKey(row table.Tuple) string {
	parts := make([]string, len(row)-1)
	for i := range parts {
		parts[i] = row[i].String()
	}
	return strings.Join(parts, "|")
}

// TestInsufficientDeadlineDegradesToBounds is the acceptance scenario of
// the robustness work: an unsafe TPC-H query (no hierarchical signature
// even under FDs, so confidence computation goes through lineage
// compilation) whose deadline watermark has already passed must return
// certified [lo, hi] bounds containing every true confidence, with
// Stats.Degraded=true and reason "deadline" — not context.DeadlineExceeded.
func TestInsufficientDeadlineDegradesToBounds(t *testing.T) {
	d := obddTestData()
	catalog := d.Catalog()
	for _, name := range []string{"5"} {
		e := tpch.Catalog()[name]
		if e == nil || e.Q == nil {
			t.Fatalf("catalog query %s missing", name)
		}
		sigma := tpch.FDsFor(e)

		// Fault-free exact truth: with the full node budget these instances
		// compile exactly despite being #P-hard in general.
		base, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		if base.Stats.Approximate {
			t.Fatalf("%s baseline did not compile exactly; pick a smaller instance", name)
		}
		truth := make(map[string]float64, base.Rows.Len())
		ci := base.Rows.Schema.MustColIndex(conf.ConfCol)
		for _, row := range base.Rows.Rows {
			truth[headKey(row)] = row[ci].F
		}

		// The degraded run: the deadline is comfortably in the future (the
		// tuple phase must finish), but the watermark margin exceeds the
		// remaining time, so the confidence tiers stop immediately at their
		// current certified bounds.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := plan.RunContext(ctx, catalog, e.Q.Clone(), sigma,
			plan.Spec{Style: plan.Lazy, Watermark: time.Hour})
		cancel()
		if err != nil {
			t.Fatalf("%s: insufficient deadline must degrade, not fail: %v", name, err)
		}
		if !res.Stats.Degraded || !strings.Contains(res.Stats.DegradeReason, "deadline") {
			t.Fatalf("%s: Degraded=%v reason=%q, want deadline degradation",
				name, res.Stats.Degraded, res.Stats.DegradeReason)
		}
		if !res.Stats.Approximate {
			t.Errorf("%s: stopped compilation must report Approximate bounds", name)
		}
		lo, hi := res.Stats.LowerBound, res.Stats.UpperBound
		if !(lo <= hi) || lo < 0 || hi > 1 {
			t.Fatalf("%s: malformed certified interval [%g, %g]", name, lo, hi)
		}
		if res.Rows.Len() != base.Rows.Len() {
			t.Fatalf("%s: %d degraded rows vs %d baseline rows", name, res.Rows.Len(), base.Rows.Len())
		}
		const eps = 1e-9
		for _, row := range res.Rows.Rows {
			tr, ok := truth[headKey(row)]
			if !ok {
				t.Fatalf("%s: degraded answer %q missing from baseline", name, headKey(row))
			}
			if tr < lo-eps || tr > hi+eps {
				t.Errorf("%s: certified [%g, %g] excludes true confidence %g of %q",
					name, lo, hi, tr, headKey(row))
			}
		}
	}
}

// TestGenerousDeadlineStaysExact: a watermark far from triggering leaves
// the run exact and undegraded — the watermark is pay-when-needed. And a
// tripped watermark on a query whose per-answer lineages resolve exactly
// from clause weights alone (query 8 at this scale: single-clause
// lineages, where the cheap bounds collapse) also stays exact: degradation
// happens only when exactness actually needed the time it didn't have.
func TestGenerousDeadlineStaysExact(t *testing.T) {
	d := obddTestData()
	catalog := d.Catalog()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	e := tpch.Catalog()["5"]
	res, err := plan.RunContext(ctx, catalog, e.Q.Clone(), tpch.FDsFor(e),
		plan.Spec{Style: plan.Lazy, Watermark: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || res.Stats.Approximate {
		t.Errorf("generous deadline must stay exact: %+v", res.Stats)
	}

	e = tpch.Catalog()["8"]
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	res, err = plan.RunContext(ctx2, catalog, e.Q.Clone(), tpch.FDsFor(e),
		plan.Spec{Style: plan.Lazy, Watermark: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded || res.Stats.Approximate {
		t.Errorf("trivially-resolvable lineage must stay exact under a tripped watermark: %+v", res.Stats)
	}
}

// TestMemoryBudgetOnTPCH runs a multi-join TPC-H query under a budget that
// forces governed execution, asserting answers identical to the ungoverned
// run (grace joins reorder work, never results).
func TestMemoryBudgetOnTPCH(t *testing.T) {
	d := obddTestData()
	catalog := d.Catalog()
	e := tpch.Catalog()["18"]
	sigma := tpch.FDsFor(e)
	base, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Spec{Style: plan.Lazy, MemBudget: 128 << 10}
	sp.Conf.TmpDir = t.TempDir()
	gov, err := plan.Run(catalog, e.Q.Clone(), sigma, sp)
	if err != nil {
		t.Fatalf("governed run: %v", err)
	}
	if base.Rows.Len() != gov.Rows.Len() {
		t.Fatalf("%d governed rows vs %d ungoverned", gov.Rows.Len(), base.Rows.Len())
	}
	ci := base.Rows.Schema.MustColIndex(conf.ConfCol)
	truth := make(map[string]float64, base.Rows.Len())
	for _, row := range base.Rows.Rows {
		truth[headKey(row)] = row[ci].F
	}
	for _, row := range gov.Rows.Rows {
		w, ok := truth[headKey(row)]
		if !ok {
			t.Fatalf("governed answer %q missing from baseline", headKey(row))
		}
		if g := row[ci].F; g != w {
			t.Errorf("answer %q: governed confidence %s != ungoverned %s",
				headKey(row), fmt.Sprintf("%x", g), fmt.Sprintf("%x", w))
		}
	}
}
