// Command sprout-gen generates probabilistic TPC-H data and writes every
// table to a page-structured heap file on disk, exercising the
// secondary-storage layer end to end. The resulting files can be scanned
// back with the storage package (see internal/storage).
//
// Usage:
//
//	sprout-gen [-sf 0.01] [-seed 1] [-out ./tpch-data]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "./tpch-data", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	t0 := time.Now()
	d := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
	fmt.Printf("generated SF=%g in %.1fs\n", *sf, time.Since(t0).Seconds())

	var totalPages, totalTuples int64
	for _, tb := range d.Tables() {
		path := filepath.Join(*out, tb.Name+".heap")
		h, err := storage.CreateHeapFile(path)
		if err != nil {
			fail(err)
		}
		for _, row := range tb.Rel.Rows {
			if err := h.Append(row); err != nil {
				fail(err)
			}
		}
		if err := h.FinishWrites(); err != nil {
			fail(err)
		}
		fmt.Printf("%-8s %9d tuples %7d pages  %s\n", tb.Name, h.NumTuples(), h.NumPages(), path)
		totalPages += h.NumPages()
		totalTuples += h.NumTuples()
		if err := h.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("total: %d tuples, %d pages (%.1f MiB)\n",
		totalTuples, totalPages, float64(totalPages)*storage.PageSize/(1<<20))

	// Persist the ANALYZE sidecar so loaders (tpch.OpenDiskCatalog) skip the
	// first-query statistics pass.
	if err := stats.SaveSidecar(*out, d.Sidecar()); err != nil {
		fail(err)
	}
	fmt.Printf("stats sidecar: %s\n", filepath.Join(*out, stats.SidecarFile))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sprout-gen:", err)
	os.Exit(1)
}
