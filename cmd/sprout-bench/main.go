// Command sprout-bench regenerates the paper's experiments (Figs. 9-13 and
// the §VI case study) on freshly generated probabilistic TPC-H data and
// prints the same rows/series the paper reports, plus the Monte Carlo and
// OBDD experiments for unsafe queries that have no exact plan.
//
// Usage:
//
//	sprout-bench [-sf 0.02] [-seed 1] [-exp all|fig9|fig10|fig11|fig12|fig13|mc|obdd|dtree|parallel|auto|columnar|degrade|casestudy] [-points 9] [-workers 4] [-json]
//	sprout-bench -style mc [-query 18] [-eps 0.05] [-delta 0.01] [-workers 4]
//	sprout-bench -style obdd [-query 18] [-budget 131072]
//	sprout-bench -style dtree [-query 18] [-budget 131072]
//
// -exp dtree runs the d-tree tier twice: against the OBDD tier on the
// interleaved-blocks lineage class — where every variable order blows the
// OBDD past its node budget while the order-free decomposition stays exact —
// and against Monte Carlo on the unsafe TPC-H query (mirroring -exp obdd).
//
// -exp parallel runs the partition-parallel scaling experiment: the unsafe
// TPC-H query under the mc and obdd styles for worker counts 1, 2, ...,
// -workers, verifying confidences are bit-identical across counts and
// reporting the wall-clock speedup per count.
//
// -exp columnar runs the vectorized-execution experiment: the generated
// instance is persisted as heap files (with the statistics sidecar), opened
// back as a disk-resident catalog scanning through a bounded buffer pool,
// and scan-heavy catalog queries run through the row engine (Spec.RowExec)
// and the columnar tier, verifying bit-identical confidences and reporting
// the tuple-phase speedup.
//
// -exp degrade runs the graceful-degradation sweep: unsafe catalog queries
// (lineage compilation, no exact plan even with FDs) under a deadline
// watermark that leaves the confidence tiers 0–4× the exact run's wall
// clock. Insufficient allowances must return certified [lo, hi] bounds
// containing every exact confidence with Stats.Degraded set — never a
// context.DeadlineExceeded — and generous allowances must reconverge to
// the exact answers; either containment failure is fatal.
//
// -exp auto runs the cost-based adaptive planner over the full TPC-H query
// suite: every supported catalog query under the Auto style and under each
// fixed style Auto chooses among, emitting per-query chosen-style and
// wall-time records (so BENCH_*.json tracks planner quality over time) and
// verifying Auto's confidences are bit-identical to the chosen style's
// direct run.
//
// The single-query forms run one catalog query under one plan style and
// print its execution statistics — -style=mc estimates confidences by
// Monte Carlo sampling, -style=obdd compiles lineage into OBDDs and
// -style=dtree decomposes it with order-free d-trees, even for queries
// that also admit sort+scan plans.
//
// With -json, every experiment emits machine-readable per-measurement
// records (experiment, name, style, wall-clock, per-phase tuple/prob
// timings, samples/nodes, memo hit rates, and the accuracy fields
// eps_bound/mean_abs_err/bound_width) as a JSON array on stdout — redirect
// to BENCH_<rev>.json to track the perf trajectory run over run; the
// human-readable tables move to stderr.
//
// Observability: -listen addr serves the engine metrics (/metrics),
// liveness (/healthz) and Go profiling (/debug/pprof/) endpoints while the
// experiments run, and keeps serving after they finish so a harness can
// scrape at leisure (kill the process to exit). -trace FILE enables
// per-operator execution tracing in -style mode and writes the trace as
// JSON to FILE.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchutil"
	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/tpch"
)

// record is one machine-readable measurement emitted under -json. The
// accuracy fields carry distinct semantics and are never conflated: an
// a-priori (ε, δ) guarantee, a measured deviation from a known-exact
// answer, and a certified interval width (truth within width/2 of the
// reported confidence).
type record struct {
	Experiment   string  `json:"experiment"`
	Name         string  `json:"name"`
	Style        string  `json:"style,omitempty"`
	WallClockSec float64 `json:"wall_clock_sec"`
	TupleSec     float64 `json:"tuple_sec,omitempty"`
	ProbSec      float64 `json:"prob_sec,omitempty"`
	Answers      int64   `json:"answers,omitempty"`
	Samples      int64   `json:"samples,omitempty"`
	Nodes        int64   `json:"nodes,omitempty"`
	MemoHits     int64   `json:"memo_hits,omitempty"`
	MemoMisses   int64   `json:"memo_misses,omitempty"`
	MemoHitRate  float64 `json:"memo_hit_rate,omitempty"`
	EpsBound     float64 `json:"eps_bound,omitempty"`
	MeanAbsErr   float64 `json:"mean_abs_err,omitempty"`
	BoundWidth   float64 `json:"bound_width,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	SpeedupX     float64 `json:"speedup_x,omitempty"`
	Identical    bool    `json:"confidences_identical,omitempty"`
	Failed       string  `json:"failed,omitempty"`
	ChosenStyle  string  `json:"chosen_style,omitempty"`
	EstCost      float64 `json:"est_cost,omitempty"`
	VsBestX      float64 `json:"vs_best_x,omitempty"`
	VsChosenX    float64 `json:"vs_chosen_x,omitempty"`
	AllowanceSec float64 `json:"allowance_sec,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	Reason       string  `json:"degrade_reason,omitempty"`
	BoundsLo     float64 `json:"bounds_lo,omitempty"`
	BoundsHi     float64 `json:"bounds_hi,omitempty"`
}

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 1.0)")
	seed := flag.Int64("seed", 1, "generator seed")
	exp := flag.String("exp", "all", "experiment: all|fig9|fig10|fig11|fig12|fig13|mc|obdd|dtree|parallel|auto|columnar|degrade|casestudy")
	points := flag.Int("points", 9, "selectivity points for fig11")
	style := flag.String("style", "", "run one catalog query under a plan style: "+plan.StyleNames())
	queryName := flag.String("query", "18", "catalog query for -style mode")
	eps := flag.Float64("eps", 0.05, "Monte Carlo additive error bound ε (-style mode and -exp mc)")
	delta := flag.Float64("delta", 0.01, "Monte Carlo failure probability δ (-style mode and -exp mc)")
	budget := flag.Int("budget", 0, "OBDD node / d-tree step budget (-style mode, -exp obdd and -exp dtree; 0 = default)")
	workers := flag.Int("workers", 4, "max worker count (-exp parallel sweeps 1,2,...,workers; -style mode runs with this many)")
	jsonOut := flag.Bool("json", false, "emit per-measurement JSON records on stdout (tables move to stderr)")
	listen := flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof on this address; keeps serving after the experiments finish (kill to exit)")
	traceFile := flag.String("trace", "", "write the per-operator execution trace as JSON to this file (-style mode only)")
	flag.Parse()
	epsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "eps" {
			epsSet = true
		}
	})

	run := func(name string) bool { return *exp == "all" || *exp == name }

	// Human-readable output: stdout normally, stderr under -json so stdout
	// stays a clean JSON document.
	var out io.Writer = os.Stdout
	if *jsonOut {
		out = os.Stderr
	}
	say := func(format string, args ...any) { fmt.Fprintf(out, format, args...) }

	records := []record{} // non-nil so -json always emits a JSON array
	emit := func(r record) { records = append(records, r) }
	flush := func() {
		if !*jsonOut {
			return
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "sprout-bench:", err)
			os.Exit(1)
		}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sprout-bench:", err)
		flush() // under -json, keep stdout a valid array with whatever completed
		os.Exit(1)
	}

	// Observability endpoints come up before data generation so a harness
	// can poll /healthz from the moment the process starts. The registry is
	// fed by -style mode runs (experiments drive benchutil's own specs).
	var metrics *obs.Registry
	if *listen != "" {
		metrics = obs.New()
		_, addr, err := obs.Serve(*listen, metrics)
		if err != nil {
			fail(err)
		}
		say("observability endpoints on http://%s (/metrics, /healthz, /debug/pprof/)\n", addr)
	}

	// Reject out-of-range (ε, δ) up front: the estimator would silently
	// substitute its defaults, making the printed accuracy labels wrong.
	if *eps <= 0 || *eps >= 1 {
		fail(fmt.Errorf("-eps must be in (0,1), got %g", *eps))
	}
	if *delta <= 0 || *delta >= 1 {
		fail(fmt.Errorf("-delta must be in (0,1), got %g", *delta))
	}

	// Validate -style/-query before the (potentially minutes-long) data
	// generation, so typos fail instantly.
	var styleMode plan.Style
	var styleEntry *tpch.Entry
	if *style != "" {
		var err error
		styleMode, err = plan.ParseStyle(*style)
		if err != nil {
			fail(err)
		}
		e, ok := tpch.Catalog()[*queryName]
		if !ok || e.Q == nil {
			fail(fmt.Errorf("unknown or unsupported catalog query %q", *queryName))
		}
		styleEntry = e
	}

	var d *tpch.Data
	if *exp != "casestudy" || *style != "" {
		say("generating TPC-H SF=%g (seed %d)...\n", *sf, *seed)
		t0 := time.Now()
		d = tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
		say("  %d lineitems, %d orders, %d customers, %d variables (%.1fs)\n\n",
			d.Item.Rel.Len(), d.Ord.Rel.Len(), d.Cust.Rel.Len(), d.NumVars, time.Since(t0).Seconds())
	}

	// serveForever keeps the -listen endpoints up after the work is done;
	// the HTTP server goroutines hold the process alive until it is killed.
	serveForever := func() {
		if *listen == "" {
			return
		}
		say("experiments done; still serving observability endpoints (kill to exit)\n")
		select {}
	}

	if *style != "" {
		rec, err := runStyleMode(out, d, styleMode, *style, styleEntry, *eps, *delta, *budget, *workers, metrics, *traceFile)
		if err != nil {
			fail(err)
		}
		emit(rec)
		flush()
		serveForever()
		return
	}
	if *traceFile != "" {
		fail(fmt.Errorf("-trace requires -style mode (experiments drive many runs; trace one with e.g. -style obdd -query 18)"))
	}

	if run("fig9") {
		say("== Fig. 9: lazy vs eager vs MystiQ plans ==\n")
		rows, err := benchutil.Fig9(d)
		if err != nil {
			fail(err)
		}
		say("%-6s %12s %12s %12s %10s\n", "query", "mystiq", "eager", "lazy", "myst/lazy")
		for _, r := range rows {
			m := "FAILED"
			ratio := "-"
			if r.MystiQErr == "" {
				m = fmt.Sprintf("%.3fs", r.MystiQ.Seconds())
				ratio = fmt.Sprintf("%.1fx", r.LazyVsMyst)
			}
			say("%-6s %12s %12.3fs %12.3fs %10s\n", r.Query, m, r.Eager.Seconds(), r.Lazy.Seconds(), ratio)
			emit(record{Experiment: "fig9", Name: r.Query, Style: "mystiq", WallClockSec: r.MystiQ.Seconds(), Failed: r.MystiQErr})
			emit(record{Experiment: "fig9", Name: r.Query, Style: "eager", WallClockSec: r.Eager.Seconds()})
			emit(record{Experiment: "fig9", Name: r.Query, Style: "lazy", WallClockSec: r.Lazy.Seconds()})
		}
		say("\n")
	}

	if run("fig10") {
		say("== Fig. 10: lazy plans, tuple vs probability time ==\n")
		rows, err := benchutil.Fig10(d)
		if err != nil {
			fail(err)
		}
		say("%-6s %12s %12s %10s %10s\n", "query", "tuples", "prob", "#answers", "#distinct")
		for _, r := range rows {
			say("%-6s %12.4fs %12.4fs %10d %10d\n",
				r.Query, r.TupleTime.Seconds(), r.ProbTime.Seconds(), r.Answers, r.Distinct)
			emit(record{Experiment: "fig10", Name: r.Query, Style: "lazy",
				WallClockSec: (r.TupleTime + r.ProbTime).Seconds(),
				TupleSec:     r.TupleTime.Seconds(), ProbSec: r.ProbTime.Seconds(),
				Answers: r.Distinct})
		}
		say("\n")
	}

	if run("fig11") {
		say("== Fig. 11: rendez-vous of eager and lazy plans (selectivity sweep) ==\n")
		rows, err := benchutil.Fig11(d, *points)
		if err != nil {
			fail(err)
		}
		say("%-12s %10s %10s %10s %10s\n", "selectivity", "lazy(A)", "eager(A)", "lazy(B)", "eager(B)")
		for _, r := range rows {
			say("%-12.2f %10.4f %10.4f %10.4f %10.4f\n",
				r.Selectivity, r.LazyA.Seconds(), r.EagerA.Seconds(), r.LazyB.Seconds(), r.EagerB.Seconds())
			sel := fmt.Sprintf("sel=%.2f", r.Selectivity)
			emit(record{Experiment: "fig11", Name: sel + "/A", Style: "lazy", WallClockSec: r.LazyA.Seconds()})
			emit(record{Experiment: "fig11", Name: sel + "/A", Style: "eager", WallClockSec: r.EagerA.Seconds()})
			emit(record{Experiment: "fig11", Name: sel + "/B", Style: "lazy", WallClockSec: r.LazyB.Seconds()})
			emit(record{Experiment: "fig11", Name: sel + "/B", Style: "eager", WallClockSec: r.EagerB.Seconds()})
		}
		say("\n")
	}

	if run("fig12") {
		say("== Fig. 12: hybrid versus eager and lazy plans ==\n")
		rows, err := benchutil.Fig12(d)
		if err != nil {
			fail(err)
		}
		say("%-6s %10s %10s %10s %14s %14s\n", "query", "eager", "lazy", "hybrid", "eager/hybrid", "lazy/hybrid")
		for _, r := range rows {
			say("%-6s %9.3fs %9.3fs %9.3fs %14.2f %14.2f\n",
				r.Query, r.Eager.Seconds(), r.Lazy.Seconds(), r.Hybrid.Seconds(), r.EagerHybrid, r.LazyHybrid)
			emit(record{Experiment: "fig12", Name: r.Query, Style: "eager", WallClockSec: r.Eager.Seconds()})
			emit(record{Experiment: "fig12", Name: r.Query, Style: "lazy", WallClockSec: r.Lazy.Seconds()})
			emit(record{Experiment: "fig12", Name: r.Query, Style: "hybrid", WallClockSec: r.Hybrid.Seconds()})
		}
		say("\n")
	}

	if run("fig13") {
		say("== Fig. 13: influence of FDs on the operator ==\n")
		rows, err := benchutil.Fig13(d)
		if err != nil {
			fail(err)
		}
		say("%-6s %10s %10s %12s %12s %8s %8s %10s %10s\n",
			"query", "seqscan", "sorting", "op(noFDs)", "op(FDs)", "scans", "scansFD", "#answers", "#distinct")
		for _, r := range rows {
			say("%-6s %9.4fs %9.4fs %11.4fs %11.4fs %8d %8d %10d %10d\n",
				r.Query, r.SeqScan.Seconds(), r.Sort.Seconds(), r.OpNoFDs.Seconds(), r.OpWithFDs.Seconds(),
				r.ScansNoFDs, r.ScansFDs, r.Answers, r.Distinct)
			emit(record{Experiment: "fig13", Name: r.Query, Style: "op-fds", WallClockSec: r.OpWithFDs.Seconds(), Answers: r.Distinct})
			emit(record{Experiment: "fig13", Name: r.Query, Style: "op-nofds", WallClockSec: r.OpNoFDs.Seconds(), Answers: r.Distinct})
			emit(record{Experiment: "fig13", Name: r.Query, Style: "seqscan", WallClockSec: r.SeqScan.Seconds()})
		}
		say("\n")
	}

	if run("mc") {
		say("== Monte Carlo: unsafe query π{odate}(Cust ⋈ Ord ⋈ Item), no FDs declared ==\n")
		say("   exact styles reject this query (no hierarchical signature, #P-hard)\n")
		// Default sweep, unless the user pinned an ε explicitly.
		sweep := []float64{0.1, 0.05, 0.02}
		if epsSet {
			sweep = []float64{*eps}
		}
		rows, err := benchutil.MonteCarloUnsafe(d, sweep, *delta)
		if err != nil {
			fail(err)
		}
		say("%-8s %-8s %10s %10s %12s %10s %10s\n", "eps", "delta", "#answers", "#tuples", "samples", "tuples(s)", "prob(s)")
		for _, r := range rows {
			say("%-8g %-8g %10d %10d %12d %10.4f %10.4f\n",
				r.Epsilon, r.Delta, r.Answers, r.Tuples, r.Samples,
				r.TupleTime.Seconds(), r.ProbTime.Seconds())
			emit(record{Experiment: "mc", Name: fmt.Sprintf("eps=%g", r.Epsilon), Style: "mc",
				WallClockSec: (r.TupleTime + r.ProbTime).Seconds(),
				TupleSec:     r.TupleTime.Seconds(), ProbSec: r.ProbTime.Seconds(),
				Answers: r.Answers, Samples: r.Samples, EpsBound: r.Epsilon})
		}
		say("\n")
	}

	if run("obdd") {
		say("== OBDD: unsafe query π{odate}(Cust ⋈ Ord ⋈ Item), exact via lineage compilation ==\n")
		say("   same #P-hard query as -exp mc; the per-date lineage is read-once, so the OBDD\n")
		say("   compiles linearly and the confidences are exact — err columns measure the\n")
		say("   Monte Carlo estimates (ε=0.05) against them\n")
		budgets := []int{*budget}
		rows, err := benchutil.OBDDUnsafe(d, budgets)
		if err != nil {
			fail(err)
		}
		say("%-10s %10s %10s %10s %10s %12s %12s %12s\n",
			"budget", "#answers", "nodes", "obdd(s)", "mc(s)", "mc-samples", "mean-err", "max-err")
		for _, r := range rows {
			name := "default"
			if r.Budget > 0 {
				name = fmt.Sprintf("%d", r.Budget)
			}
			say("%-10s %10d %10d %10.4f %10.4f %12d %12.2e %12.2e\n",
				name, r.Answers, r.Nodes, r.OBDDTime.Seconds(), r.MCTime.Seconds(),
				r.MCSamples, r.MeanAbsErr, r.MaxAbsErr)
			if r.Bounded {
				say("   budget exceeded on some answers: certified bounds, max width %.3g\n", r.MaxWidth)
			}
			orec := record{Experiment: "obdd", Name: "budget=" + name, Style: "obdd",
				WallClockSec: r.OBDDTime.Seconds(), TupleSec: r.TupleTime.Seconds(), ProbSec: r.OBDDTime.Seconds(),
				Answers: r.Answers, Nodes: r.Nodes, MemoHits: r.MemoHits, MemoMisses: r.MemoMisses,
				BoundWidth: r.MaxWidth}
			if probes := r.MemoHits + r.MemoMisses; probes > 0 {
				orec.MemoHitRate = float64(r.MemoHits) / float64(probes)
			}
			emit(orec)
			emit(record{Experiment: "obdd", Name: "budget=" + name, Style: "mc",
				WallClockSec: r.MCTime.Seconds(), ProbSec: r.MCTime.Seconds(),
				Answers: r.Answers, Samples: r.MCSamples, MeanAbsErr: r.MeanAbsErr})
		}
		say("\n")
	}

	if run("dtree") {
		say("== d-tree: order-free decomposition vs OBDD and Monte Carlo ==\n")
		say("   interleaved-blocks lineage: every variable order gives the OBDD width ~3^k,\n")
		say("   so past ~11 blocks its default budget only certifies bounds — the d-tree's\n")
		say("   independent-OR rule splits the blocks apart and stays exact\n")
		blocks, err := benchutil.DTreeBlocks([]int{4, 8, 12})
		if err != nil {
			fail(err)
		}
		say("%-8s %8s %8s %12s %12s %12s %12s %12s\n",
			"blocks", "vars", "clauses", "obdd-exact", "obdd-nodes", "obdd-width", "dtree-steps", "dtree-err")
		for _, r := range blocks {
			if !r.DTreeExact {
				fail(fmt.Errorf("dtree: blocks=%d not resolved exactly", r.Blocks))
			}
			say("%-8d %8d %8d %12v %12d %12.3g %12d %12.2e\n",
				r.Blocks, r.Vars, r.Clauses, r.OBDDExact, r.OBDDNodes, r.OBDDWidth, r.DTreeNodes, r.DTreeErr)
			name := fmt.Sprintf("blocks=%d", r.Blocks)
			emit(record{Experiment: "dtree", Name: name, Style: "obdd",
				Nodes: int64(r.OBDDNodes), BoundWidth: r.OBDDWidth})
			emit(record{Experiment: "dtree", Name: name, Style: "dtree",
				Nodes: int64(r.DTreeNodes), MeanAbsErr: r.DTreeErr})
		}
		say("   unsafe query π{odate}(Cust ⋈ Ord ⋈ Item), no FDs declared (cf. -exp obdd):\n")
		rows, err := benchutil.DTreeUnsafe(d, []int{*budget})
		if err != nil {
			fail(err)
		}
		say("%-10s %10s %10s %10s %10s %12s %12s %12s\n",
			"budget", "#answers", "steps", "dtree(s)", "mc(s)", "mc-samples", "mean-err", "max-err")
		for _, r := range rows {
			name := "default"
			if r.Budget > 0 {
				name = fmt.Sprintf("%d", r.Budget)
			}
			say("%-10s %10d %10d %10.4f %10.4f %12d %12.2e %12.2e\n",
				name, r.Answers, r.Steps, r.DTreeTime.Seconds(), r.MCTime.Seconds(),
				r.MCSamples, r.MeanAbsErr, r.MaxAbsErr)
			if r.Bounded {
				say("   budget exceeded on some answers: certified bounds, max width %.3g\n", r.MaxWidth)
			}
			emit(record{Experiment: "dtree", Name: "budget=" + name, Style: "dtree",
				WallClockSec: r.DTreeTime.Seconds(), Answers: r.Answers, Nodes: r.Steps, BoundWidth: r.MaxWidth})
			emit(record{Experiment: "dtree", Name: "budget=" + name, Style: "mc",
				WallClockSec: r.MCTime.Seconds(), Answers: r.Answers, Samples: r.MCSamples, MeanAbsErr: r.MeanAbsErr})
		}
		say("\n")
	}

	if run("parallel") {
		say("== Parallel: worker-count scaling on the unsafe query (mc and obdd styles) ==\n")
		say("   partition-parallel joins/scans + parallel confidence tiers; confidences\n")
		say("   are bit-identical across worker counts by construction (verified below)\n")
		counts := []int{1}
		for w := 2; w <= *workers; w *= 2 {
			counts = append(counts, w)
		}
		if last := counts[len(counts)-1]; last != *workers && *workers > 1 {
			counts = append(counts, *workers)
		}
		rows, err := benchutil.ParallelScaling(d, counts, nil, 2)
		if err != nil {
			fail(err)
		}
		say("%-8s %-8s %10s %10s %10s %10s\n", "style", "workers", "wall(s)", "speedup", "#answers", "identical")
		for _, r := range rows {
			say("%-8s %-8d %10.4f %9.2fx %10d %10v\n",
				r.Style, r.Workers, r.Wall.Seconds(), r.Speedup, r.Answers, r.Identical)
			if !r.Identical {
				fail(fmt.Errorf("parallel: %s workers=%d produced different confidences than workers=1", r.Style, r.Workers))
			}
			emit(record{Experiment: "parallel", Name: fmt.Sprintf("workers=%d", r.Workers), Style: r.Style,
				WallClockSec: r.Wall.Seconds(), Answers: r.Answers, Workers: r.Workers,
				SpeedupX: r.Speedup, Identical: r.Identical})
		}
		say("\n")
	}

	if run("auto") {
		say("== Auto: cost-based adaptive planner vs fixed styles over the full suite ==\n")
		say("   per query: Auto's chosen style and wall-clock vs every style it chooses\n")
		say("   among (plus the MystiQ baseline); confidences verified bit-identical\n")
		rows, err := benchutil.AutoSuite(d, 3)
		if err != nil {
			fail(err)
		}
		// Best fixed wall-clock per query, for the auto/best quality
		// ratio, and each query's chosen-style wall-clock: auto runs the
		// bit-identical plan of its chosen style, so auto/chosen ≈ 1.0 —
		// deviations in auto/best beyond auto/chosen are timing noise,
		// not planner mistakes.
		best := map[string]time.Duration{}
		chosenWall := map[string]time.Duration{}
		chosenOf := map[string]string{}
		for _, r := range rows {
			if r.Style == "auto" {
				chosenOf[r.Query] = r.Chosen
			}
		}
		for _, r := range rows {
			if r.Style == "auto" || r.Err != "" {
				continue
			}
			if b, ok := best[r.Query]; !ok || r.Wall < b {
				best[r.Query] = r.Wall
			}
			if r.Style == chosenOf[r.Query] {
				chosenWall[r.Query] = r.Wall
			}
		}
		say("%-6s %-8s %10s %-8s %12s %10s %10s\n", "query", "style", "wall(s)", "chosen", "est.cost", "vs-best", "vs-chosen")
		worst := 0.0
		for _, r := range rows {
			if r.Err != "" {
				say("%-6s %-8s %10s (%s)\n", r.Query, r.Style, "FAILED", r.Err)
				emit(record{Experiment: "auto", Name: r.Query, Style: r.Style, Failed: r.Err})
				continue
			}
			line := record{Experiment: "auto", Name: r.Query, Style: r.Style, WallClockSec: r.Wall.Seconds()}
			if r.Style == "auto" {
				vsBest, vsChosen := 0.0, 0.0
				if b := best[r.Query]; b > 0 {
					vsBest = float64(r.Wall) / float64(b)
					if vsBest > worst {
						worst = vsBest
					}
				}
				if c := chosenWall[r.Query]; c > 0 {
					vsChosen = float64(r.Wall) / float64(c)
				}
				line.ChosenStyle = r.Chosen
				line.EstCost = r.Cost
				line.Identical = r.Identical
				line.VsBestX = vsBest
				line.VsChosenX = vsChosen
				say("%-6s %-8s %10.4f %-8s %12.3g %9.2fx %9.2fx\n",
					r.Query, r.Style, r.Wall.Seconds(), r.Chosen, r.Cost, vsBest, vsChosen)
			} else {
				say("%-6s %-8s %10.4f\n", r.Query, r.Style, r.Wall.Seconds())
			}
			emit(line)
		}
		say("worst auto/best-fixed ratio: %.2fx (auto executes its chosen style's plan\n", worst)
		say("bit-identically, so vs-chosen ≈ 1 marks the measurement noise floor)\n\n")
	}

	if run("columnar") {
		say("== Columnar: vectorized execution vs the row engine over heap files ==\n")
		say("   heap files + stats sidecar written to disk, reopened as a disk-resident\n")
		say("   catalog (bounded buffer pool); confidences are bit-identical across the\n")
		say("   two tiers by construction (verified below)\n")
		rows, err := benchutil.Columnar(d, nil, 256, 2)
		if err != nil {
			fail(err)
		}
		say("%-6s %-10s %10s %10s %10s %10s %10s\n", "query", "exec", "wall(s)", "tuples(s)", "prob(s)", "speedup", "identical")
		for _, r := range rows {
			say("%-6s %-10s %10.4f %10.4f %10.4f %9.2fx %10v\n",
				r.Query, r.Exec, r.Wall.Seconds(), r.Tuple.Seconds(), r.Prob.Seconds(), r.Speedup, r.Identical)
			if !r.Identical {
				fail(fmt.Errorf("columnar: query %s produced different confidences than the row engine", r.Query))
			}
			emit(record{Experiment: "columnar", Name: r.Query, Style: r.Exec,
				WallClockSec: r.Wall.Seconds(), TupleSec: r.Tuple.Seconds(), ProbSec: r.Prob.Seconds(),
				Answers: r.Answers, SpeedupX: r.Speedup, Identical: r.Identical})
		}
		say("\n")
	}

	if run("degrade") {
		say("== Degrade: graceful deadline degradation on unsafe queries ==\n")
		say("   the deadline watermark leaves the confidence tiers a fraction of the\n")
		say("   exact run's wall clock; insufficient allowances must certify [lo, hi]\n")
		say("   bounds containing every exact confidence (Degraded=true), generous\n")
		say("   allowances must reconverge to the exact answers\n")
		rows, err := benchutil.Degrade(d, nil, nil)
		if err != nil {
			fail(err)
		}
		say("%-6s %8s %12s %9s %18s %10s %10s %8s\n",
			"query", "frac", "allowance", "degraded", "reason", "lo", "hi", "contains")
		for _, r := range rows {
			say("%-6s %7gx %12s %9v %18s %10.6f %10.6f %8v\n",
				r.Query, r.Frac, r.Allowance.Round(time.Microsecond), r.Degraded, r.Reason, r.Lo, r.Hi, r.Contains)
			if !r.Contains {
				fail(fmt.Errorf("degrade: query %s at allowance %gx violated the degradation contract", r.Query, r.Frac))
			}
			emit(record{Experiment: "degrade", Name: fmt.Sprintf("%s@%gx", r.Query, r.Frac), Style: "lazy",
				WallClockSec: r.Wall.Seconds(), Answers: r.Answers,
				AllowanceSec: r.Allowance.Seconds(), Degraded: r.Degraded, Reason: r.Reason,
				BoundsLo: r.Lo, BoundsHi: r.Hi, BoundWidth: r.Width, Identical: r.Identical})
		}
		say("\n")
	}

	if run("casestudy") {
		say("== §VI case study: TPC-H query classification ==\n")
		say("%s\n", benchutil.CaseStudy())
	}

	flush()
	serveForever()
}

// runStyleMode evaluates one catalog query under one plan style and prints
// its execution statistics — the -style=mc path is the interactive way to
// try the Monte Carlo estimator on any catalog query, -style=obdd the
// lineage compiler.
func runStyleMode(out io.Writer, d *tpch.Data, style plan.Style, styleName string, e *tpch.Entry, eps, delta float64, budget, workers int, metrics *obs.Registry, traceFile string) (record, error) {
	res, err := plan.Run(d.Catalog(), e.Q.Clone(), tpch.FDsFor(e), plan.Spec{
		Style:   style,
		Workers: workers,
		MC:      prob.MCOptions{Epsilon: eps, Delta: delta, Seed: 1},
		OBDD:    obdd.Options{NodeBudget: budget},
		DTree:   dtree.Options{NodeBudget: budget},
		Trace:   traceFile != "",
		Metrics: metrics,
	})
	if err != nil {
		return record{}, err
	}
	if traceFile != "" {
		js, err := res.Stats.Trace.JSON()
		if err != nil {
			return record{}, err
		}
		if err := os.WriteFile(traceFile, js, 0o644); err != nil {
			return record{}, err
		}
		fmt.Fprintf(out, "  trace written to %s\n", traceFile)
	}
	fmt.Fprintf(out, "query %s under %s:\n  %s\n", e.Name, styleName, res.Stats.Plan)
	if res.Stats.ChosenStyle != "" {
		fmt.Fprintf(out, "  auto chose %s (estimated cost %.3g)\n", res.Stats.ChosenStyle, res.Stats.EstimatedCost)
	}
	fmt.Fprintf(out, "  tuples %.4fs, prob %.4fs; %d answer tuples, %d distinct\n",
		res.Stats.TupleTime.Seconds(), res.Stats.ProbTime.Seconds(),
		res.Stats.AnswerTuples, res.Stats.DistinctTuples)
	if res.Stats.OBDDNodes > 0 {
		fmt.Fprintf(out, "  OBDD: %d nodes\n", res.Stats.OBDDNodes)
	}
	if res.Stats.DTreeNodes > 0 {
		fmt.Fprintf(out, "  d-tree: %d decomposition steps\n", res.Stats.DTreeNodes)
	}
	if res.Stats.Approximate {
		if res.Stats.Samples > 0 {
			fmt.Fprintf(out, "  approximate: %d samples, per-answer additive error ≤ %g with probability %g\n",
				res.Stats.Samples, res.Stats.Epsilon, 1-delta)
		}
		if res.Stats.UpperBound > res.Stats.LowerBound {
			fmt.Fprintf(out, "  certified bounds: every true confidence lies in [%g, %g]\n",
				res.Stats.LowerBound, res.Stats.UpperBound)
		}
	}
	rec := record{
		Experiment:   "style",
		Name:         e.Name,
		Style:        styleName,
		WallClockSec: (res.Stats.TupleTime + res.Stats.ProbTime).Seconds(),
		TupleSec:     res.Stats.TupleTime.Seconds(),
		ProbSec:      res.Stats.ProbTime.Seconds(),
		Answers:      res.Stats.DistinctTuples,
		Samples:      res.Stats.Samples,
		Nodes:        res.Stats.OBDDNodes + res.Stats.DTreeNodes, // at most one tier ran
		MemoHits:     res.Stats.MemoHits,
		MemoMisses:   res.Stats.MemoMisses,
		ChosenStyle:  res.Stats.ChosenStyle,
		EstCost:      res.Stats.EstimatedCost,
	}
	if probes := rec.MemoHits + rec.MemoMisses; probes > 0 {
		rec.MemoHitRate = float64(rec.MemoHits) / float64(probes)
	}
	return rec, nil
}
