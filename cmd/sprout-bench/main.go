// Command sprout-bench regenerates the paper's experiments (Figs. 9-13 and
// the §VI case study) on freshly generated probabilistic TPC-H data and
// prints the same rows/series the paper reports.
//
// Usage:
//
//	sprout-bench [-sf 0.02] [-seed 1] [-exp all|fig9|fig10|fig11|fig12|fig13|casestudy] [-points 9]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchutil"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 1.0)")
	seed := flag.Int64("seed", 1, "generator seed")
	exp := flag.String("exp", "all", "experiment: all|fig9|fig10|fig11|fig12|fig13|casestudy")
	points := flag.Int("points", 9, "selectivity points for fig11")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }

	var d *tpch.Data
	if *exp != "casestudy" {
		fmt.Printf("generating TPC-H SF=%g (seed %d)...\n", *sf, *seed)
		t0 := time.Now()
		d = tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
		fmt.Printf("  %d lineitems, %d orders, %d customers, %d variables (%.1fs)\n\n",
			d.Item.Rel.Len(), d.Ord.Rel.Len(), d.Cust.Rel.Len(), d.NumVars, time.Since(t0).Seconds())
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sprout-bench:", err)
		os.Exit(1)
	}

	if run("fig9") {
		fmt.Println("== Fig. 9: lazy vs eager vs MystiQ plans ==")
		rows, err := benchutil.Fig9(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %12s %12s %12s %10s\n", "query", "mystiq", "eager", "lazy", "myst/lazy")
		for _, r := range rows {
			m := "FAILED"
			ratio := "-"
			if r.MystiQErr == "" {
				m = fmt.Sprintf("%.3fs", r.MystiQ.Seconds())
				ratio = fmt.Sprintf("%.1fx", r.LazyVsMyst)
			}
			fmt.Printf("%-6s %12s %12.3fs %12.3fs %10s\n", r.Query, m, r.Eager.Seconds(), r.Lazy.Seconds(), ratio)
		}
		fmt.Println()
	}

	if run("fig10") {
		fmt.Println("== Fig. 10: lazy plans, tuple vs probability time ==")
		rows, err := benchutil.Fig10(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %12s %12s %10s %10s\n", "query", "tuples", "prob", "#answers", "#distinct")
		for _, r := range rows {
			fmt.Printf("%-6s %12.4fs %12.4fs %10d %10d\n",
				r.Query, r.TupleTime.Seconds(), r.ProbTime.Seconds(), r.Answers, r.Distinct)
		}
		fmt.Println()
	}

	if run("fig11") {
		fmt.Println("== Fig. 11: rendez-vous of eager and lazy plans (selectivity sweep) ==")
		rows, err := benchutil.Fig11(d, *points)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-12s %10s %10s %10s %10s\n", "selectivity", "lazy(A)", "eager(A)", "lazy(B)", "eager(B)")
		for _, r := range rows {
			fmt.Printf("%-12.2f %10.4f %10.4f %10.4f %10.4f\n",
				r.Selectivity, r.LazyA.Seconds(), r.EagerA.Seconds(), r.LazyB.Seconds(), r.EagerB.Seconds())
		}
		fmt.Println()
	}

	if run("fig12") {
		fmt.Println("== Fig. 12: hybrid versus eager and lazy plans ==")
		rows, err := benchutil.Fig12(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %10s %10s %10s %14s %14s\n", "query", "eager", "lazy", "hybrid", "eager/hybrid", "lazy/hybrid")
		for _, r := range rows {
			fmt.Printf("%-6s %9.3fs %9.3fs %9.3fs %14.2f %14.2f\n",
				r.Query, r.Eager.Seconds(), r.Lazy.Seconds(), r.Hybrid.Seconds(), r.EagerHybrid, r.LazyHybrid)
		}
		fmt.Println()
	}

	if run("fig13") {
		fmt.Println("== Fig. 13: influence of FDs on the operator ==")
		rows, err := benchutil.Fig13(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %10s %10s %12s %12s %8s %8s %10s %10s\n",
			"query", "seqscan", "sorting", "op(noFDs)", "op(FDs)", "scans", "scansFD", "#answers", "#distinct")
		for _, r := range rows {
			fmt.Printf("%-6s %9.4fs %9.4fs %11.4fs %11.4fs %8d %8d %10d %10d\n",
				r.Query, r.SeqScan.Seconds(), r.Sort.Seconds(), r.OpNoFDs.Seconds(), r.OpWithFDs.Seconds(),
				r.ScansNoFDs, r.ScansFDs, r.Answers, r.Distinct)
		}
		fmt.Println()
	}

	if run("casestudy") {
		fmt.Println("== §VI case study: TPC-H query classification ==")
		fmt.Println(benchutil.CaseStudy())
	}
}
