// Command sprout-bench regenerates the paper's experiments (Figs. 9-13 and
// the §VI case study) on freshly generated probabilistic TPC-H data and
// prints the same rows/series the paper reports, plus the Monte Carlo
// experiment for unsafe queries that have no exact plan.
//
// Usage:
//
//	sprout-bench [-sf 0.02] [-seed 1] [-exp all|fig9|fig10|fig11|fig12|fig13|mc|casestudy] [-points 9]
//	sprout-bench -style mc [-query 18] [-eps 0.05] [-delta 0.01]
//
// The second form runs a single catalog query under one plan style
// (lazy|eager|hybrid|mystiq|mc) and prints its execution statistics —
// -style=mc estimates confidences by Monte Carlo sampling even for queries
// that also admit exact plans.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchutil"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 1.0)")
	seed := flag.Int64("seed", 1, "generator seed")
	exp := flag.String("exp", "all", "experiment: all|fig9|fig10|fig11|fig12|fig13|mc|casestudy")
	points := flag.Int("points", 9, "selectivity points for fig11")
	style := flag.String("style", "", "run one catalog query under a plan style: lazy|eager|hybrid|mystiq|mc")
	queryName := flag.String("query", "18", "catalog query for -style mode")
	eps := flag.Float64("eps", 0.05, "Monte Carlo additive error bound ε (-style mode and -exp mc)")
	delta := flag.Float64("delta", 0.01, "Monte Carlo failure probability δ (-style mode and -exp mc)")
	flag.Parse()
	epsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "eps" {
			epsSet = true
		}
	})

	run := func(name string) bool { return *exp == "all" || *exp == name }

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sprout-bench:", err)
		os.Exit(1)
	}

	// Reject out-of-range (ε, δ) up front: the estimator would silently
	// substitute its defaults, making the printed accuracy labels wrong.
	if *eps <= 0 || *eps >= 1 {
		fail(fmt.Errorf("-eps must be in (0,1), got %g", *eps))
	}
	if *delta <= 0 || *delta >= 1 {
		fail(fmt.Errorf("-delta must be in (0,1), got %g", *delta))
	}

	// Validate -style/-query before the (potentially minutes-long) data
	// generation, so typos fail instantly.
	var styleMode plan.Style
	var styleEntry *tpch.Entry
	if *style != "" {
		var err error
		styleMode, err = plan.ParseStyle(*style)
		if err != nil {
			fail(err)
		}
		e, ok := tpch.Catalog()[*queryName]
		if !ok || e.Q == nil {
			fail(fmt.Errorf("unknown or unsupported catalog query %q", *queryName))
		}
		styleEntry = e
	}

	var d *tpch.Data
	if *exp != "casestudy" || *style != "" {
		fmt.Printf("generating TPC-H SF=%g (seed %d)...\n", *sf, *seed)
		t0 := time.Now()
		d = tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
		fmt.Printf("  %d lineitems, %d orders, %d customers, %d variables (%.1fs)\n\n",
			d.Item.Rel.Len(), d.Ord.Rel.Len(), d.Cust.Rel.Len(), d.NumVars, time.Since(t0).Seconds())
	}

	if *style != "" {
		if err := runStyleMode(d, styleMode, *style, styleEntry, *eps, *delta); err != nil {
			fail(err)
		}
		return
	}

	if run("fig9") {
		fmt.Println("== Fig. 9: lazy vs eager vs MystiQ plans ==")
		rows, err := benchutil.Fig9(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %12s %12s %12s %10s\n", "query", "mystiq", "eager", "lazy", "myst/lazy")
		for _, r := range rows {
			m := "FAILED"
			ratio := "-"
			if r.MystiQErr == "" {
				m = fmt.Sprintf("%.3fs", r.MystiQ.Seconds())
				ratio = fmt.Sprintf("%.1fx", r.LazyVsMyst)
			}
			fmt.Printf("%-6s %12s %12.3fs %12.3fs %10s\n", r.Query, m, r.Eager.Seconds(), r.Lazy.Seconds(), ratio)
		}
		fmt.Println()
	}

	if run("fig10") {
		fmt.Println("== Fig. 10: lazy plans, tuple vs probability time ==")
		rows, err := benchutil.Fig10(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %12s %12s %10s %10s\n", "query", "tuples", "prob", "#answers", "#distinct")
		for _, r := range rows {
			fmt.Printf("%-6s %12.4fs %12.4fs %10d %10d\n",
				r.Query, r.TupleTime.Seconds(), r.ProbTime.Seconds(), r.Answers, r.Distinct)
		}
		fmt.Println()
	}

	if run("fig11") {
		fmt.Println("== Fig. 11: rendez-vous of eager and lazy plans (selectivity sweep) ==")
		rows, err := benchutil.Fig11(d, *points)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-12s %10s %10s %10s %10s\n", "selectivity", "lazy(A)", "eager(A)", "lazy(B)", "eager(B)")
		for _, r := range rows {
			fmt.Printf("%-12.2f %10.4f %10.4f %10.4f %10.4f\n",
				r.Selectivity, r.LazyA.Seconds(), r.EagerA.Seconds(), r.LazyB.Seconds(), r.EagerB.Seconds())
		}
		fmt.Println()
	}

	if run("fig12") {
		fmt.Println("== Fig. 12: hybrid versus eager and lazy plans ==")
		rows, err := benchutil.Fig12(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %10s %10s %10s %14s %14s\n", "query", "eager", "lazy", "hybrid", "eager/hybrid", "lazy/hybrid")
		for _, r := range rows {
			fmt.Printf("%-6s %9.3fs %9.3fs %9.3fs %14.2f %14.2f\n",
				r.Query, r.Eager.Seconds(), r.Lazy.Seconds(), r.Hybrid.Seconds(), r.EagerHybrid, r.LazyHybrid)
		}
		fmt.Println()
	}

	if run("fig13") {
		fmt.Println("== Fig. 13: influence of FDs on the operator ==")
		rows, err := benchutil.Fig13(d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-6s %10s %10s %12s %12s %8s %8s %10s %10s\n",
			"query", "seqscan", "sorting", "op(noFDs)", "op(FDs)", "scans", "scansFD", "#answers", "#distinct")
		for _, r := range rows {
			fmt.Printf("%-6s %9.4fs %9.4fs %11.4fs %11.4fs %8d %8d %10d %10d\n",
				r.Query, r.SeqScan.Seconds(), r.Sort.Seconds(), r.OpNoFDs.Seconds(), r.OpWithFDs.Seconds(),
				r.ScansNoFDs, r.ScansFDs, r.Answers, r.Distinct)
		}
		fmt.Println()
	}

	if run("mc") {
		fmt.Println("== Monte Carlo: unsafe query π{odate}(Cust ⋈ Ord ⋈ Item), no FDs declared ==")
		fmt.Println("   exact styles reject this query (no hierarchical signature, #P-hard)")
		// Default sweep, unless the user pinned an ε explicitly.
		sweep := []float64{0.1, 0.05, 0.02}
		if epsSet {
			sweep = []float64{*eps}
		}
		rows, err := benchutil.MonteCarloUnsafe(d, sweep, *delta)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-8s %-8s %10s %10s %12s %10s %10s\n", "eps", "delta", "#answers", "#tuples", "samples", "tuples(s)", "prob(s)")
		for _, r := range rows {
			fmt.Printf("%-8g %-8g %10d %10d %12d %10.4f %10.4f\n",
				r.Epsilon, r.Delta, r.Answers, r.Tuples, r.Samples,
				r.TupleTime.Seconds(), r.ProbTime.Seconds())
		}
		fmt.Println()
	}

	if run("casestudy") {
		fmt.Println("== §VI case study: TPC-H query classification ==")
		fmt.Println(benchutil.CaseStudy())
	}
}

// runStyleMode evaluates one catalog query under one plan style and prints
// its execution statistics — the -style=mc path is the interactive way to
// try the Monte Carlo estimator on any catalog query.
func runStyleMode(d *tpch.Data, style plan.Style, styleName string, e *tpch.Entry, eps, delta float64) error {
	res, err := plan.Run(d.Catalog(), e.Q.Clone(), tpch.FDsFor(e), plan.Spec{
		Style: style,
		MC:    prob.MCOptions{Epsilon: eps, Delta: delta, Seed: 1},
	})
	if err != nil {
		return err
	}
	fmt.Printf("query %s under %s:\n  %s\n", e.Name, styleName, res.Stats.Plan)
	fmt.Printf("  tuples %.4fs, prob %.4fs; %d answer tuples, %d distinct\n",
		res.Stats.TupleTime.Seconds(), res.Stats.ProbTime.Seconds(),
		res.Stats.AnswerTuples, res.Stats.DistinctTuples)
	if res.Stats.Approximate {
		fmt.Printf("  approximate: %d samples, per-answer additive error ≤ %g with probability %g\n",
			res.Stats.Samples, res.Stats.Epsilon, 1-delta)
	}
	return nil
}
