// Command sproutq runs one named catalog query (a conjunctive subquery of a
// TPC-H query, see internal/tpch) against freshly generated data and prints
// the distinct answers with their confidences (exact; OBDD-compiled under
// -plan obdd; d-tree-decomposed under -plan dtree; or Monte Carlo estimates
// under -plan mc), plus the plan and signature used.
//
// Usage:
//
//	sproutq [-sf 0.005] [-seed 1] [-plan lazy|eager|hybrid|mystiq|mc|obdd|dtree|auto] [-workers 0] [-limit 20] [-explain] [-trace] 18
//	sproutq -list
//
// -plan auto lets the cost-based planner pick the style from the catalog's
// ANALYZE statistics; -explain prints the logical plan IR (and, under auto,
// the per-style cost table) instead of running the query; -trace collects a
// per-operator execution trace during the run and prints it (with row
// counts, lineage shape, compilation detail and durations) after the stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"repro/internal/plan"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "generator seed")
	planName := flag.String("plan", "lazy", "plan style: "+plan.StyleNames())
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); confidences do not depend on it")
	limit := flag.Int("limit", 20, "max answer rows to print")
	list := flag.Bool("list", false, "list catalog queries and exit")
	explain := flag.Bool("explain", false, "print the logical plan (and auto's cost table) instead of running")
	trace := flag.Bool("trace", false, "collect a per-operator execution trace and print it after the stats")
	flag.Parse()

	catalog := tpch.Catalog()
	if *list {
		names := make([]string, 0, len(catalog))
		for n := range catalog {
			names = append(names, n)
		}
		slices.Sort(names)
		for _, n := range names {
			e := catalog[n]
			if e.Unsupported != "" {
				fmt.Printf("%-5s unsupported: %s\n", n, e.Unsupported)
				continue
			}
			fmt.Printf("%-5s %s\n      %s\n", n, e.Q, e.Note)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sproutq [flags] <query-name>; see -list")
		os.Exit(2)
	}
	e := catalog[flag.Arg(0)]
	if e == nil {
		fail(fmt.Errorf("unknown query %q (see -list)", flag.Arg(0)))
	}
	if e.Unsupported != "" {
		fail(fmt.Errorf("query %s is unsupported: %s", e.Name, e.Unsupported))
	}

	style, err := plan.ParseStyle(*planName)
	if err != nil {
		fail(err)
	}

	fmt.Printf("query %s: %s\n", e.Name, e.Q)
	d := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
	if *explain {
		desc, err := plan.Explain(d.Catalog(), e.Q.Clone(), tpch.FDsFor(e), plan.Spec{Style: style})
		if err != nil {
			fail(err)
		}
		fmt.Println(desc)
		return
	}
	res, err := plan.Run(d.Catalog(), e.Q.Clone(), tpch.FDsFor(e), plan.Spec{Style: style, Workers: *workers, Trace: *trace})
	if err != nil {
		fail(err)
	}
	fmt.Printf("plan: %s\n", res.Stats.Plan)
	if res.Stats.ChosenStyle != "" {
		fmt.Printf("auto chose: %s (estimated cost %.3g)\n", res.Stats.ChosenStyle, res.Stats.EstimatedCost)
	}
	fmt.Printf("signature: %s\n", res.Stats.Signature)
	fmt.Printf("answer tuples: %d, distinct: %d, operator scans: %d\n",
		res.Stats.AnswerTuples, res.Stats.DistinctTuples, res.Stats.Scans)
	if res.Stats.OBDDNodes > 0 {
		fmt.Printf("OBDD nodes: %d\n", res.Stats.OBDDNodes)
	}
	if res.Stats.Approximate && res.Stats.UpperBound > res.Stats.LowerBound {
		fmt.Printf("certified bounds: every true confidence lies in [%g, %g]; printed confidences are midpoints\n",
			res.Stats.LowerBound, res.Stats.UpperBound)
	}
	fmt.Printf("tuple time %.4fs, prob time %.4fs\n", res.Stats.TupleTime.Seconds(), res.Stats.ProbTime.Seconds())
	if res.Stats.Trace != nil {
		fmt.Println()
		fmt.Print(res.Stats.Trace.Render(true))
	}
	fmt.Println()

	for _, c := range res.Rows.Schema.Names() {
		fmt.Printf("%-24s", c)
	}
	fmt.Println()
	for i, row := range res.Rows.Rows {
		if i >= *limit {
			fmt.Printf("... (%d more rows)\n", res.Rows.Len()-*limit)
			break
		}
		for _, v := range row {
			fmt.Printf("%-24s", v.String())
		}
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sproutq:", err)
	os.Exit(1)
}
