// Command sproutvet runs the repo's invariant analyzers (package
// repro/internal/analyzers) as a `go vet` tool:
//
//	go build -o sproutvet ./cmd/sproutvet
//	go vet -vettool=$(pwd)/sproutvet ./...
//
// or, equivalently, let sproutvet re-exec go vet around itself:
//
//	go run ./cmd/sproutvet ./...
//
// It implements the go command's vet-tool JSON protocol (the unitchecker
// protocol) directly on the standard library: the go command hands it one
// *.cfg file per package with file lists, the import map, and export-data
// paths, and sproutvet typechecks the package with go/types + the gc
// importer and runs the suite. The x/tools module is deliberately not a
// dependency — the container this repo builds in has no module cache, so
// the protocol shim lives in this file and the analyzer framework in
// internal/analyzers.
//
// Diagnostics are silenced per-site with `//sproutvet:allow <analyzer>
// <reason>`; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// Build-cache fingerprint handshake: `go vet` runs the tool with
		// -V=full and caches results keyed by the printed id, so the id
		// must change whenever the binary does — hash the binary.
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command asks which analyzer flags the tool supports
		// before forwarding any; sproutvet has none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	case len(args) >= 1:
		// Convenience mode: sproutvet ./... re-execs go vet around itself.
		os.Exit(runStandalone(args))
	default:
		fmt.Fprintln(os.Stderr, "usage: sproutvet <packages>  (or via go vet -vettool)")
		os.Exit(2)
	}
}

func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel sproutvet buildID=%02x\n", exe, h.Sum(nil))
}

func runStandalone(pkgs []string) int {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, pkgs...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatalf("%v", err)
	}
	return 0
}

// vetConfig is the JSON the go command writes for each analyzed package.
// The field set mirrors x/tools' unitchecker.Config — it is the go
// command's side of the contract, not ours to vary.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	// The go command requires the facts file to exist after every run,
	// including for dependency packages analyzed only for facts. The suite
	// exports no cross-package facts, so the file is always empty and
	// VetxOnly runs are free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImp.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect nothing; Check's return says enough
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags := analyzers.Check(fset, files, pkg, info, analyzers.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sproutvet: "+format+"\n", args...)
	os.Exit(1)
}
