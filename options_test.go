package sprout

import (
	"context"
	"strings"
	"testing"
)

// TestRunOptionValidation: invalid option values surface as clear errors
// from Run instead of silently misbehaving.
func TestRunOptionValidation(t *testing.T) {
	db := fig1DB(t)
	q := introQuery()
	cases := []struct {
		name string
		opt  RunOption
		want string
	}{
		{"workers-zero", WithWorkers(0), "WithWorkers(0)"},
		{"workers-negative", WithWorkers(-3), "WithWorkers(-3)"},
		{"eps-zero", WithEpsilonDelta(0, 0.01), "epsilon 0 outside (0,1)"},
		{"eps-too-big", WithEpsilonDelta(1.5, 0.01), "epsilon 1.5 outside (0,1)"},
		{"delta-zero", WithEpsilonDelta(0.05, 0), "delta 0 outside (0,1)"},
		{"delta-one", WithEpsilonDelta(0.05, 1), "delta 1 outside (0,1)"},
		{"budget-zero", WithNodeBudget(0), "WithNodeBudget(0)"},
		{"budget-negative", WithNodeBudget(-1), "WithNodeBudget(-1)"},
		{"samples-zero", WithMaxSamples(0), "WithMaxSamples(0)"},
		{"width-negative", WithTargetWidth(-0.1), "WithTargetWidth(-0.1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := db.Run(q, Lazy, tc.opt)
			if err == nil {
				t.Fatal("Run accepted an invalid option")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNewEngineValidation: NewEngine rejects invalid defaults, and per-call
// options on an engine are validated too.
func TestNewEngineValidation(t *testing.T) {
	db := fig1DB(t)
	if _, err := db.NewEngine(WithWorkers(0)); err == nil {
		t.Fatal("NewEngine accepted WithWorkers(0)")
	}
	if _, err := db.NewEngine(WithEpsilonDelta(2, 0.5)); err == nil {
		t.Fatal("NewEngine accepted WithEpsilonDelta(2, 0.5)")
	}
	e, err := db.NewEngine(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), introQuery(), Lazy, WithNodeBudget(-1)); err == nil {
		t.Fatal("Engine.Run accepted WithNodeBudget(-1)")
	}
	if _, err := e.Prepare(introQuery(), MonteCarlo, WithEpsilonDelta(0.05, 7)); err == nil {
		t.Fatal("Engine.Prepare accepted delta = 7")
	}
	// Valid options still work end to end.
	res, err := e.Run(context.Background(), introQuery(), Lazy, WithWorkers(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

// TestAutoStyleFacade: the Auto style works through the public API — the
// decision is reported, Explain renders the IR plus the cost table, and
// RequireExact keeps Monte Carlo out even on #P-hard queries.
func TestAutoStyleFacade(t *testing.T) {
	db := fig1DB(t)
	res, err := db.Run(introQuery(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChosenStyle == "" || res.Stats.EstimatedCost <= 0 {
		t.Fatalf("auto decision not reported: %+v", res.Stats)
	}
	if !strings.HasPrefix(res.Stats.Plan, "auto["+res.Stats.ChosenStyle+"]") {
		t.Errorf("plan line %q does not carry the auto prefix", res.Stats.Plan)
	}
	direct, err := db.Run(introQuery(), mustParseStyle(t, res.Stats.ChosenStyle))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(direct.Rows) {
		t.Fatalf("auto rows %d != direct rows %d", len(res.Rows), len(direct.Rows))
	}
	for i := range res.Rows {
		if res.Rows[i].Confidence != direct.Rows[i].Confidence {
			t.Fatalf("row %d: auto %v != direct %v (bit-identical required)",
				i, res.Rows[i].Confidence, direct.Rows[i].Confidence)
		}
	}

	desc, err := db.Explain(introQuery(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"auto: chose", "cost-based choice", "scan Cust", "conf["} {
		if !strings.Contains(desc, want) {
			t.Errorf("Explain(Auto) lacks %q:\n%s", want, desc)
		}
	}

	// The prototypical #P-hard query R(a) ⋈ S(a,b) ⋈ T(b): Auto must
	// dispatch a lineage tier; under RequireExact it must not be Monte
	// Carlo.
	db3 := NewDB()
	r := db3.MustCreateTable("R", IntCol("a"))
	s := db3.MustCreateTable("S", IntCol("a"), IntCol("b"))
	u := db3.MustCreateTable("T", IntCol("b"))
	r.MustInsert(0.5, Int(1))
	s.MustInsert(0.5, Int(1), Int(2))
	u.MustInsert(0.5, Int(2))
	hard := NewQuery("hard").From("R", "a").From("S", "a", "b").From("T", "b")
	unsafeRes, err := db3.Run(hard, Auto, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := unsafeRes.Stats.ChosenStyle; got != "obdd" && got != "dtree" && got != "mc" {
		t.Fatalf("unsafe query dispatched %q, want a lineage tier", got)
	}
	exactRes, err := db3.Run(hard, Auto, RequireExact())
	if err != nil {
		t.Fatal(err)
	}
	if exactRes.Stats.ChosenStyle == "mc" {
		t.Fatal("Auto picked MC under RequireExact")
	}
	if exactRes.Stats.Approximate {
		t.Fatal("Auto under RequireExact returned an approximate result")
	}
}

func mustParseStyle(t *testing.T, name string) PlanStyle {
	t.Helper()
	for _, s := range []PlanStyle{Lazy, Eager, Hybrid, MystiQ, MonteCarlo, OBDD, DTree} {
		if s.String() == name {
			return s
		}
	}
	t.Fatalf("unknown style %q", name)
	return Lazy
}
