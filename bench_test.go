// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VII) plus the ablations called out in DESIGN.md. Each BenchmarkFigNN
// group corresponds to one paper figure; cmd/sprout-bench prints the same
// data as formatted tables.
//
// The TPC-H scale factor defaults to 0.005 so the full suite runs in
// seconds; set SPROUT_BENCH_SF (e.g. 0.02 or 0.1) to approach the paper's
// SF 1 shapes more closely.
package sprout_test

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
	"repro/internal/tpch"
)

var (
	benchOnce sync.Once
	benchData *tpch.Data
)

func benchSF() float64 {
	if s := os.Getenv("SPROUT_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.005
}

func data(b *testing.B) *tpch.Data {
	b.Helper()
	benchOnce.Do(func() {
		benchData = tpch.Generate(tpch.Config{SF: benchSF(), Seed: 1})
	})
	return benchData
}

// runStyle benchmarks one catalog query under one plan style.
func runStyle(b *testing.B, d *tpch.Data, name string, style plan.Style) {
	b.Helper()
	b.ReportAllocs()
	e := tpch.Catalog()[name]
	catalog := d.Catalog()
	sigma := tpch.FDsFor(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: style}); err != nil {
			b.Fatalf("%s %v: %v", name, style, err)
		}
	}
}

// BenchmarkFig09 reproduces Fig. 9: lazy vs eager vs MystiQ plans on the
// eight comparison queries. Expected shape: lazy fastest on the queries
// with selective joins (18, 21, B17), eager and MystiQ close behind or
// worse; the paper reports up to two orders of magnitude at SF 1.
func BenchmarkFig09(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	for _, q := range tpch.Fig9Queries() {
		q := q
		b.Run(q+"/mystiq", func(b *testing.B) {
			b.ReportAllocs()
			e := tpch.Catalog()[q]
			catalog := d.Catalog()
			sigma := tpch.FDsFor(e)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// MystiQ runtime failures (§VII) are part of the result.
				_, _ = plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: plan.SafeMystiQ})
			}
		})
		b.Run(q+"/eager", func(b *testing.B) { runStyle(b, d, q, plan.Eager) })
		b.Run(q+"/lazy", func(b *testing.B) { runStyle(b, d, q, plan.Lazy) })
	}
}

// BenchmarkFig10 reproduces Fig. 10: lazy plans for the remaining 18
// queries. The interesting split (tuple time vs probability time) is
// printed by cmd/sprout-bench; here each query's full lazy run is timed.
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	for _, q := range tpch.Fig10Queries() {
		q := q
		b.Run(q, func(b *testing.B) { runStyle(b, d, q, plan.Lazy) })
	}
}

// BenchmarkFig10ProbOnly times only the confidence-computation phase of the
// lazy plans — the "prob" series of Fig. 10, expected to be one to two
// orders of magnitude below the tuple-computation time.
func BenchmarkFig10ProbOnly(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	for _, q := range tpch.Fig10Queries() {
		q := q
		b.Run(q, func(b *testing.B) {
			b.ReportAllocs()
			e := tpch.Catalog()[q]
			sigma := tpch.FDsFor(e)
			sig, err := signature.Best(e.Q, sigma)
			if err != nil {
				b.Fatal(err)
			}
			answer, err := plan.Answer(catalog, e.Q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := *answer
				if _, err := conf.Compute(&cp, sig, conf.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11 reproduces Fig. 11: the lazy/eager rendez-vous as the
// selectivity of the constant selections varies. Expected shape: lazy wins
// at small selectivities, eager at large ones, with a crossover in between.
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	for _, point := range []string{"0.1", "0.3", "0.5", "0.7", "0.9"} {
		point := point
		b.Run("sel="+point, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := benchutil.Fig11(d, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		break // the full sweep is expensive; Fig11 rows cover all points
	}
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := benchutil.Fig11(d, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12 reproduces Fig. 12: hybrid plans against the extremes on
// queries C and D. Expected shape: hybrid at least as fast as both.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	b.Run("table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := benchutil.Fig12(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13 reproduces Fig. 13: the operator with and without FD
// refinement on queries 2, 7, 11 and B3, against sequential-scan and sort
// baselines. Expected shape: with FDs the operator is close to one
// sort+scan; without them it needs several times longer (more scans).
func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	for _, name := range []string{"2", "7", "11", "B3"} {
		name := name
		e := tpch.Catalog()[name]
		sigma := tpch.FDsFor(e)
		refined, err := signature.WithFDs(e.Q, sigma)
		if err != nil {
			b.Fatal(err)
		}
		conservative := signature.Conservative(refined)
		answer, err := plan.Answer(catalog, e.Q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/operator-withFDs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp := *answer
				if _, err := conf.Compute(&cp, refined, conf.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/operator-noFDs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp := *answer
				if _, err := conf.Compute(&cp, conservative, conf.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/seqscan", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Count(engine.NewMemScan(answer)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGRPvs1Scan compares the scheduled one-scan operator with
// the literal GRP-sequence semantics of Fig. 5 on the same answer relation
// (DESIGN.md ablation 1).
func BenchmarkAblationGRPvs1Scan(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	e := tpch.Catalog()["18"]
	sigma := tpch.FDsFor(e)
	sig, err := signature.WithFDs(e.Q, sigma)
	if err != nil {
		b.Fatal(err)
	}
	answer, err := plan.Answer(catalog, e.Q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("1scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp := *answer
			if _, err := conf.Compute(&cp, sig, conf.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grp-sequence", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := conf.GRPSequence(answer, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSortBudget exercises the external sort feeding the
// operator under shrinking memory budgets (DESIGN.md ablation 3): smaller
// budgets spill more runs to disk.
func BenchmarkAblationSortBudget(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	e := tpch.Catalog()["B17"]
	sigma := tpch.FDsFor(e)
	sig, err := signature.Best(e.Q, sigma)
	if err != nil {
		b.Fatal(err)
	}
	answer, err := plan.Answer(catalog, e.Q)
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{0, 4096, 512} {
		budget := budget
		name := "inmemory"
		if budget > 0 {
			name = "budget=" + strconv.Itoa(budget)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cp := *answer
				if _, err := conf.Compute(&cp, sig, conf.Options{SortBudget: budget, TmpDir: b.TempDir()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinChoice compares hash join against sort+merge join on
// the Ord ⋈ Item workhorse join (DESIGN.md ablation 4). Merge join's sorted
// output is what the confidence operator wants, but the sort dominates.
func BenchmarkAblationJoinChoice(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	ordScan := func() engine.Operator { return engine.NewMemScan(d.Ord.Rel) }
	itemScan := func() engine.Operator { return engine.NewMemScan(d.Item.Rel) }
	ordKey := []int{d.Ord.Rel.Schema.MustColIndex("okey")}
	itemKey := []int{d.Item.Rel.Schema.MustColIndex("okey")}
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j, err := engine.NewHashJoin(ordScan(), itemScan(), ordKey, itemKey)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Count(j); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j, err := engine.NewMergeJoin(
				engine.NewSort(ordScan(), engine.SortSpec{Cols: ordKey}),
				engine.NewSort(itemScan(), engine.SortSpec{Cols: itemKey}),
				ordKey, itemKey)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Count(j); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonteCarloUnsafe measures the Monte Carlo plan on the unsafe
// query π{odate}(Cust ⋈ Ord ⋈ Item) with no FDs declared — a query no
// exact style can evaluate (no hierarchical signature exists, §II). The
// estimator fans the per-date lineage DNFs out to GOMAXPROCS workers;
// tighter ε grows the per-answer sample count quadratically.
func BenchmarkMonteCarloUnsafe(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	sigma := fd.NewSet()
	for _, eps := range []float64{0.1, 0.05} {
		eps := eps
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := plan.Run(catalog, benchutil.UnsafeQuery().Clone(), sigma, plan.Spec{
					Style: plan.MonteCarlo,
					MC:    prob.MCOptions{Epsilon: eps, Delta: 0.01, Seed: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Stats.Approximate {
					b.Fatal("expected an approximate result")
				}
			}
		})
	}
	// The estimator is also a valid (if approximate) style for safe
	// queries; query 18's lazy plan is the exact yardstick.
	b.Run("safe-query-18", func(b *testing.B) {
		b.ReportAllocs()
		e := tpch.Catalog()["18"]
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(catalog, e.Q.Clone(), tpch.FDsFor(e), plan.Spec{
				Style: plan.MonteCarlo,
				MC:    prob.MCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 1},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOBDDUnsafe compares the OBDD style against the Monte Carlo
// style on the unsafe query π{odate}(Cust ⋈ Ord ⋈ Item) with no FDs — the
// query where PR 1 could only estimate. The generated data satisfies
// okey → ckey even undeclared, so the per-date lineage is read-once: the
// OBDD compiles linearly and returns *exact* confidences, typically faster
// than sampling; the mc sub-benchmark reports the estimates' actual mean
// absolute error against the OBDD truth as the "mc-abs-err" metric.
func BenchmarkOBDDUnsafe(b *testing.B) {
	b.ReportAllocs()
	d := data(b)
	catalog := d.Catalog()
	sigma := fd.NewSet()
	spec := func(style plan.Style) plan.Spec {
		return plan.Spec{
			Style: style,
			MC:    prob.MCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 1},
		}
	}
	b.Run("obdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := plan.Run(catalog, benchutil.UnsafeQuery().Clone(), sigma, spec(plan.OBDD))
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Approximate {
				b.Fatal("read-once lineage should compile exactly under the default budget")
			}
			b.ReportMetric(float64(res.Stats.OBDDNodes), "obdd-nodes")
		}
	})
	b.Run("mc", func(b *testing.B) {
		b.ReportAllocs()
		exact, err := plan.Run(catalog, benchutil.UnsafeQuery().Clone(), sigma, spec(plan.OBDD))
		if err != nil {
			b.Fatal(err)
		}
		if exact.Stats.Approximate {
			b.Fatal("OBDD baseline must be exact for mc-abs-err to measure true error")
		}
		ci := exact.Rows.Schema.MustColIndex(conf.ConfCol)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := plan.Run(catalog, benchutil.UnsafeQuery().Clone(), sigma, spec(plan.MonteCarlo))
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			for r := range res.Rows.Rows {
				sum += math.Abs(res.Rows.Rows[r][ci].F - exact.Rows.Rows[r][ci].F)
			}
			b.ReportMetric(sum/float64(res.Rows.Len()), "mc-abs-err")
		}
	})
}

// BenchmarkOperatorScaling measures the confidence operator alone on
// growing synthetic answers (linear in input size for 1scan signatures,
// Prop. III.5 / §V.C).
func BenchmarkOperatorScaling(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			sch := table.NewSchema(
				table.DataCol("d", table.KindInt),
				table.VarCol("R"), table.ProbCol("R"),
			)
			rel := table.NewRelation(sch)
			for i := 0; i < n; i++ {
				rel.MustAppend(table.Tuple{
					table.Int(int64(i % 100)),
					table.VarValue(prob.Var(i + 1)), table.Float(0.5),
				})
			}
			sig := signature.NewStar(signature.Table("R"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := *rel
				if _, err := conf.Compute(&cp, sig, conf.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
