package sprout

import (
	"context"
	"testing"
)

// TestEngineMetrics: every Engine.Run feeds the engine-owned metrics
// registry — query counters (total, per style, failed), tuple counters, tier
// work and latency histograms — and Engine.Metrics snapshots them.
func TestEngineMetrics(t *testing.T) {
	db := tpchDB(nil)
	e, err := db.NewEngine(WithWorkers(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.Run(context.Background(), wrapQuery(custOrd()), Lazy); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), wrapQuery(custOrd()), OBDD); err != nil {
		t.Fatal(err)
	}
	// A cancelled run is a served-but-failed query.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(cancelled, wrapQuery(custOrd()), Lazy); err == nil {
		t.Fatal("cancelled run should fail")
	}

	snap := e.Metrics()
	if got := snap.Counters["queries_total"]; got != 3 {
		t.Errorf("queries_total = %d, want 3", got)
	}
	if got := snap.Counters["queries_failed_total"]; got != 1 {
		t.Errorf("queries_failed_total = %d, want 1", got)
	}
	if got := snap.Counters["queries_style_lazy_total"]; got != 2 {
		t.Errorf("queries_style_lazy_total = %d, want 2", got)
	}
	if got := snap.Counters["queries_style_obdd_total"]; got != 1 {
		t.Errorf("queries_style_obdd_total = %d, want 1", got)
	}
	if got := snap.Counters["answer_tuples_total"]; got <= 0 {
		t.Errorf("answer_tuples_total = %d, want > 0", got)
	}
	if got := snap.Counters["obdd_nodes_total"]; got <= 0 {
		t.Errorf("obdd_nodes_total = %d, want > 0", got)
	}
	if got := snap.Gauges["queries_inflight"]; got != 0 {
		t.Errorf("queries_inflight = %d, want 0 at rest", got)
	}
	h, ok := snap.Histograms["query_seconds"]
	if !ok {
		t.Fatal("query_seconds histogram missing")
	}
	// Failed runs record no latency: only the two successes are observed.
	if h.Count != 2 {
		t.Errorf("query_seconds count = %d, want 2", h.Count)
	}
	if h.SumSec <= 0 {
		t.Errorf("query_seconds sum = %g, want > 0", h.SumSec)
	}

	if e.MetricsRegistry() == nil {
		t.Fatal("MetricsRegistry returned nil")
	}
	// DB.Run (no engine) keeps working with no registry attached.
	if _, err := db.Run(wrapQuery(custOrd()), Lazy, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
}
