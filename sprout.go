// Package sprout is a from-scratch Go reproduction of SPROUT — the
// secondary-storage operator for exact confidence computation on
// tuple-independent probabilistic databases introduced by Olteanu, Huang and
// Koch ("SPROUT: Lazy vs. Eager Query Plans for Tuple-Independent
// Probabilistic Databases", ICDE 2009).
//
// A tuple-independent probabilistic database attaches an independent Boolean
// random variable (with a marginal probability) to every tuple. A conjunctive
// query then has, for each distinct answer tuple, a confidence: the total
// probability of the possible worlds in which the tuple is in the answer.
// SPROUT computes these confidences exactly and efficiently for hierarchical
// queries — and, via functional-dependency-based rewriting, for many
// non-hierarchical ones — by deriving a *query signature* that factorizes the
// answer's lineage into one-occurrence form and evaluating it in a small
// number of sort+scan passes over the answer.
//
// # Quick start
//
//	db := sprout.NewDB()
//	cust := db.MustCreateTable("Cust",
//	    sprout.IntCol("ckey"), sprout.StringCol("cname"))
//	cust.MustInsert(0.1, sprout.Int(1), sprout.String("Joe"))
//	...
//	q := sprout.NewQuery("Q").
//	    Select("odate").
//	    From("Cust", "ckey", "cname").
//	    From("Ord", "okey", "ckey", "odate").
//	    From("Item", "okey", "discount", "ckey").
//	    Where("Cust", "cname", sprout.Eq, sprout.String("Joe"))
//	res, err := db.Run(q, sprout.Lazy)
//
// Plan styles follow the paper: Lazy computes answer tuples first and runs
// the confidence operator once at the top; Eager pushes
// probability-computation operators onto every table and join; Hybrid mixes
// the two; MystiQ evaluates the safe-plan baseline the paper compares
// against. Three styles go beyond the paper: OBDD compiles each answer's
// lineage DNF into a reduced ordered binary decision diagram — exact
// confidences whenever the diagram fits a node budget, certified
// deterministic [lo, hi] bounds when it does not; DTree decomposes the
// lineage with an order-free d-tree (independent-OR partitions,
// independent-AND factoring, Shannon expansion as a last resort) under the
// same budget-and-bounds contract; and MonteCarlo estimates confidences
// with an (ε, δ) sampler. Together they answer the conjunctive queries
// whose exact confidence computation is #P-hard: exact styles fall through
// a four-tier ladder — sort+scan, OBDD compilation, d-tree decomposition
// (both still exact under their budgets), and finally Monte Carlo — on
// such queries, unless the RequireExact option is passed.
//
// The Auto style makes the choice itself: it analyzes the database (one
// cached ANALYZE pass per table, internal/stats), prices every applicable
// style's logical plan with the planner's cost model, and dispatches the
// cheapest — never an approximate style when an exact one applies, and
// never Monte Carlo under RequireExact. Explain renders the logical plan
// IR (internal/logical) a style would execute, plus Auto's per-style cost
// table.
package sprout

import (
	"context"
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/fd"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// PlanStyle selects how confidence computation is placed in the query plan
// (paper §V.B, Fig. 7).
type PlanStyle = plan.Style

// Plan styles.
const (
	// Lazy computes all answer tuples first, then runs the confidence
	// operator once (Fig. 7c) — the paper's usually-fastest choice.
	Lazy = plan.Lazy
	// Eager pushes confidence computation onto every table and join
	// (Fig. 7a), mirroring the structure of safe plans.
	Eager = plan.Eager
	// Hybrid applies the valid probability-computation operators after a
	// prefix of the joins and finishes lazily (Fig. 7b).
	Hybrid = plan.Hybrid
	// MystiQ is the safe-plan baseline of Dalvi and Suciu as implemented by
	// the MystiQ middleware: restrictive join orders, duplicate elimination
	// after every join, probabilities aggregated without variable columns.
	MystiQ = plan.SafeMystiQ
	// MonteCarlo estimates confidences from per-answer lineage DNFs with
	// an (ε, δ) Monte Carlo sampler instead of computing them exactly. It
	// accepts queries without a hierarchical signature (#P-hard in
	// general) — and is the last tier of the exact styles' fallback chain
	// on such queries unless RequireExact is passed.
	MonteCarlo = plan.MonteCarlo
	// OBDD compiles each answer's lineage DNF into a reduced ordered
	// binary decision diagram: exact confidences whenever the diagram
	// fits the node budget (WithNodeBudget) — including for many queries
	// without a hierarchical signature — and certified deterministic
	// [Stats.LowerBound, Stats.UpperBound] intervals around every true
	// confidence when it does not (the reported confidences are then
	// bound midpoints and Stats.Approximate is set). Exact styles try
	// OBDD compilation before falling back to d-tree decomposition and
	// Monte Carlo.
	OBDD = plan.OBDD
	// DTree decomposes each answer's lineage DNF with an order-free
	// d-tree: variable-disjoint clause partitions evaluate as independent
	// ORs, common variables factor out as independent ANDs, and Shannon
	// expansion splits only when neither rule applies. Exact under the
	// step budget (WithNodeBudget) — including on lineage whose every
	// variable order blows up an OBDD — with the same certified
	// [Stats.LowerBound, Stats.UpperBound] bound mode as OBDD when the
	// budget runs out. The exact styles' fallback ladder tries it between
	// OBDD and Monte Carlo.
	DTree = plan.DTree
	// Auto is the cost-based adaptive planner: it analyzes the database
	// (one cached ANALYZE pass per table), prices every applicable style
	// with the planner's cost model — respecting the fallback ladder and
	// RequireExact — and dispatches the cheapest. Stats.ChosenStyle and
	// Stats.EstimatedCost report the decision; confidences are
	// bit-identical to running the chosen style directly.
	Auto = plan.Auto
)

// CmpOp is a comparison operator for selections.
type CmpOp = engine.CmpOp

// Selection comparison operators.
const (
	Eq = engine.OpEq
	Ne = engine.OpNe
	Lt = engine.OpLt
	Le = engine.OpLe
	Gt = engine.OpGt
	Ge = engine.OpGe
)

// Value is a typed constant (column value or selection operand).
type Value = table.Value

// Int wraps an integer value.
func Int(v int64) Value { return table.Int(v) }

// Float wraps a float value.
func Float(v float64) Value { return table.Float(v) }

// String wraps a string value.
func String(v string) Value { return table.Str(v) }

// Bool wraps a boolean value.
func Bool(v bool) Value { return table.Bool(v) }

// ColumnDef declares one data column of a table.
type ColumnDef struct {
	Name string
	Kind table.Kind
}

// IntCol declares an integer column.
func IntCol(name string) ColumnDef { return ColumnDef{Name: name, Kind: table.KindInt} }

// FloatCol declares a float column.
func FloatCol(name string) ColumnDef { return ColumnDef{Name: name, Kind: table.KindFloat} }

// StringCol declares a string column.
func StringCol(name string) ColumnDef { return ColumnDef{Name: name, Kind: table.KindString} }

// DB is a tuple-independent probabilistic database: a set of tables whose
// tuples carry independent Boolean random variables, plus the declared
// functional dependencies used for signature refinement (§IV).
type DB struct {
	catalog *plan.Catalog
	sigma   *fd.Set
	nextVar prob.Var
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{catalog: plan.NewCatalog(), sigma: fd.NewSet()}
}

// Table is one tuple-independent table of a DB.
type Table struct {
	db *DB
	pt *table.ProbTable
}

// CreateTable registers a new table with the given data columns. The
// variable and probability columns of the paper's data model (§II.A) are
// managed internally: Insert assigns a fresh Boolean random variable to
// every tuple.
func (db *DB) CreateTable(name string, cols ...ColumnDef) (*Table, error) {
	dataCols := make([]table.Column, len(cols))
	for i, c := range cols {
		dataCols[i] = table.DataCol(c.Name, c.Kind)
	}
	pt := table.NewProbTable(name, dataCols...)
	if err := db.catalog.Add(pt); err != nil {
		return nil, err
	}
	return &Table{db: db, pt: pt}, nil
}

// MustCreateTable is CreateTable for program setup; it panics on error.
func (db *DB) MustCreateTable(name string, cols ...ColumnDef) *Table {
	t, err := db.CreateTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Insert appends a tuple that exists with probability p, assigning it a
// fresh Boolean random variable.
func (t *Table) Insert(p float64, values ...Value) error {
	t.db.nextVar++
	return t.pt.AddRow(t.db.nextVar, p, values...)
}

// MustInsert is Insert for program setup; it panics on error.
func (t *Table) MustInsert(p float64, values ...Value) {
	if err := t.Insert(p, values...); err != nil {
		panic(err)
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.pt.Name }

// Len returns the number of tuples.
func (t *Table) Len() int { return t.pt.Rel.Len() }

// AddTable registers an externally built probabilistic table (e.g. from the
// TPC-H generator). Variable ids must not collide with those issued by
// Insert; use either mechanism per DB.
func (db *DB) AddTable(pt *table.ProbTable) error { return db.catalog.Add(pt) }

// DeclareKey declares that key functionally determines all other attributes
// of the named table — the schema knowledge that refines signatures and
// rescues non-hierarchical queries (§IV). attrs must list the table's full
// attribute set as used in queries.
func (db *DB) DeclareKey(tableName string, key []string, attrs []string) {
	db.sigma.AddKey(tableName, key, attrs)
}

// DeclareFD declares a general functional dependency lhs → rhs.
func (db *DB) DeclareFD(tableName string, lhs, rhs []string) {
	db.sigma.Add(fd.FD{Rel: tableName, LHS: lhs, RHS: rhs})
}

// FDs exposes the declared dependency set.
func (db *DB) FDs() *fd.Set { return db.sigma }

// Catalog exposes the underlying planner catalog (for the benchmark
// harness and tools).
func (db *DB) Catalog() *plan.Catalog { return db.catalog }

// Query is a conjunctive query without self-joins in the paper's form
// π_A σ_φ (R1 ⋈ … ⋈ Rn): relations join on equally named attributes and φ
// is a conjunction of attribute-constant comparisons.
type Query struct {
	q *query.Query
}

// NewQuery starts building a named query.
func NewQuery(name string) *Query {
	return &Query{q: &query.Query{Name: name}}
}

// Select sets the projection list (empty = Boolean query).
func (b *Query) Select(attrs ...string) *Query {
	b.q.Head = append(b.q.Head, attrs...)
	return b
}

// From adds a relation occurrence reading the named base table; attrs
// positionally rename the table's data columns (shared names across
// occurrences are join conditions).
func (b *Query) From(tableName string, attrs ...string) *Query {
	b.q.Rels = append(b.q.Rels, query.Rel(tableName, attrs...))
	return b
}

// FromAlias adds a renamed occurrence of a base table — the paper's device
// for self-joins whose occurrences select disjoint tuples (§IV, TPC-H Q7).
func (b *Query) FromAlias(occurrence, base string, attrs ...string) *Query {
	b.q.Rels = append(b.q.Rels, query.Alias(occurrence, base, attrs...))
	return b
}

// Where adds a selection σ on one occurrence's attribute.
func (b *Query) Where(occurrence, attr string, op CmpOp, v Value) *Query {
	b.q.Sels = append(b.q.Sels, query.Selection{Rel: occurrence, Attr: attr, Op: op, Val: v})
	return b
}

// Internal returns the underlying query AST (for tools and tests).
func (b *Query) Internal() *query.Query { return b.q }

// String renders the query in π σ ⋈ notation.
func (b *Query) String() string { return b.q.String() }

// IsHierarchical reports whether the query is hierarchical (Def. II.1) —
// tractable on any tuple-independent database without FD support.
func (b *Query) IsHierarchical() bool { return b.q.IsHierarchical() }

// Row is one answer: the head values and the exact confidence.
type Row struct {
	Values     []Value
	Confidence float64
}

// Result holds the distinct answer tuples with confidences plus execution
// statistics.
type Result struct {
	Columns []string
	Rows    []Row
	Stats   plan.Stats
}

// RunOption tunes a Run call beyond the plan style (Monte Carlo accuracy,
// seeding, exactness requirements). Options validate their arguments:
// invalid values surface as clear errors from Run, RunBatch, Prepare and
// NewEngine instead of silently misbehaving.
type RunOption func(*plan.Spec) error

// WithEpsilonDelta sets the Monte Carlo accuracy target: each estimated
// confidence is within eps of the exact value with probability at least
// 1-delta. Both must lie strictly inside (0, 1); omit the option to keep
// the defaults (0.05, 0.01).
func WithEpsilonDelta(eps, delta float64) RunOption {
	return func(s *plan.Spec) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("sprout: WithEpsilonDelta: epsilon %g outside (0,1)", eps)
		}
		if delta <= 0 || delta >= 1 {
			return fmt.Errorf("sprout: WithEpsilonDelta: delta %g outside (0,1)", delta)
		}
		s.MC.Epsilon = eps
		s.MC.Delta = delta
		return nil
	}
}

// WithSeed fixes the estimator's random seed, making approximate results
// reproducible: the same seed, query and data give identical estimates.
func WithSeed(seed int64) RunOption {
	return func(s *plan.Spec) error { s.MC.Seed = seed; return nil }
}

// WithMaxSamples caps the per-answer sample count; capped estimates report
// the weaker ε they actually achieve via Result.Stats.Epsilon. The cap must
// be positive; omit the option for the default.
func WithMaxSamples(n int) RunOption {
	return func(s *plan.Spec) error {
		if n <= 0 {
			return fmt.Errorf("sprout: WithMaxSamples(%d): sample cap must be ≥ 1 (omit the option for the default)", n)
		}
		s.MC.MaxSamples = n
		return nil
	}
}

// WithWorkers sizes the shared worker pool driving every parallel stage of
// a run: partitioned scans and hash-partitioned joins, the
// partition-parallel aggregation passes of the confidence operator,
// per-answer OBDD compilation, and Monte Carlo estimation. The count must
// be ≥ 1 (1 forces the classic single-threaded executor); omit the option
// for the GOMAXPROCS default. Computed confidences are bit-identical for
// every worker count — only the wall-clock changes.
func WithWorkers(n int) RunOption {
	return func(s *plan.Spec) error {
		if n <= 0 {
			return fmt.Errorf("sprout: WithWorkers(%d): worker count must be ≥ 1 (omit the option for the GOMAXPROCS default)", n)
		}
		s.Workers = n
		s.MC.Workers = n
		return nil
	}
}

// WithNodeBudget caps the per-answer compilation effort — OBDD nodes and
// d-tree decomposition steps (and both anytime modes' expansion budgets) —
// for the OBDD and DTree styles and the exact styles' fallback tiers. The
// budget must be positive; omit the option for the defaults. Answers whose
// compilation exceeds the budget are reported as certified [lo, hi] bounds
// under the OBDD and DTree styles, and passed down the ladder by the exact
// styles.
func WithNodeBudget(n int) RunOption {
	return func(s *plan.Spec) error {
		if n <= 0 {
			return fmt.Errorf("sprout: WithNodeBudget(%d): node budget must be ≥ 1 (omit the option for the default)", n)
		}
		s.OBDD.NodeBudget = n
		s.DTree.NodeBudget = n
		return nil
	}
}

// WithTargetWidth stops the OBDD and d-tree anytime modes early once the
// certified interval reaches the given width (hi-lo ≤ w), instead of
// spending the whole node budget; 0 tightens until the budget is spent.
func WithTargetWidth(w float64) RunOption {
	return func(s *plan.Spec) error {
		if w < 0 || w >= 1 {
			return fmt.Errorf("sprout: WithTargetWidth(%g): width must lie in [0,1)", w)
		}
		s.OBDD.TargetWidth = w
		s.DTree.TargetWidth = w
		return nil
	}
}

// WithTrace collects a per-operator execution trace during the run and
// attaches it to Result.Stats.Trace: one span per scan, join and
// confidence-computation tier, annotated with row counts, lineage shape,
// compilation detail (OBDD nodes, d-tree steps, memo hits, sampler
// statistics) and wall-clock durations. Tracing allocates a small tree per
// run; the hot per-tuple paths stay untouched. See Trace.Render and
// Trace.JSON for the two output forms.
func WithTrace() RunOption {
	return func(s *plan.Spec) error { s.Trace = true; return nil }
}

// RequireExact rejects queries without a hierarchical signature instead of
// falling back to OBDD compilation or Monte Carlo estimation: Run then
// fails exactly where the paper's framework ends (#P-hard queries, §II).
// Under the OBDD style it forbids bound-mode results, and under Auto it
// removes Monte Carlo from the candidate set.
func RequireExact() RunOption {
	return func(s *plan.Spec) error { s.RequireExact = true; return nil }
}

// WithMemoryBudget caps one run's governed working memory at the given
// number of bytes: external sort buffers, hash-join build sides and the
// lineage-compilation budgets all charge a per-query governor. On pressure
// the run degrades instead of failing — sorts spill to disk earlier, hash
// joins fall back to sort-merge (grace) mode, the OBDD/d-tree tiers shrink
// their node budgets toward certified bounds — and Result.Stats.Degraded
// reports it with DegradeReason "memory". The budget must be positive;
// omit the option for ungoverned execution. Governed runs keep the exact
// same answers; only memory use, wall-clock and (for shrunk compilation
// budgets) bound widths change.
func WithMemoryBudget(bytes int64) RunOption {
	return func(s *plan.Spec) error {
		if bytes <= 0 {
			return fmt.Errorf("sprout: WithMemoryBudget(%d): budget must be ≥ 1 byte (omit the option for ungoverned execution)", bytes)
		}
		s.MemBudget = bytes
		return nil
	}
}

// WithDeadlineWatermark turns a context deadline into graceful degradation:
// the given margin before the deadline, the OBDD and d-tree tiers stop and
// return their current certified [lo, hi] bounds (Result.Stats.LowerBound/
// UpperBound still contain every true confidence) and the Monte Carlo tier
// returns its running estimate with the weaker ε it actually achieved —
// instead of the run dying with context.DeadlineExceeded and nothing to
// show. Result.Stats.Degraded is set with DegradeReason "deadline". The
// margin must be positive; omit the option (or run without a deadline) to
// keep strict deadline semantics.
func WithDeadlineWatermark(margin time.Duration) RunOption {
	return func(s *plan.Spec) error {
		if margin <= 0 {
			return fmt.Errorf("sprout: WithDeadlineWatermark(%v): margin must be positive (omit the option for strict deadlines)", margin)
		}
		s.Watermark = margin
		return nil
	}
}

// WithRetryPolicy retries a query whose failure is a transient I/O fault
// (as classified by the storage fault plane) up to maxAttempts total
// attempts, sleeping between attempts with capped exponential backoff —
// base·2^(attempt-1) up to max — plus deterministic jitter.
// Result.Stats.Retries counts the re-runs. maxAttempts must be ≥ 1 (1
// disables retrying); base and max must be positive with base ≤ max.
func WithRetryPolicy(maxAttempts int, base, max time.Duration) RunOption {
	return func(s *plan.Spec) error {
		if maxAttempts < 1 {
			return fmt.Errorf("sprout: WithRetryPolicy: maxAttempts %d must be ≥ 1", maxAttempts)
		}
		if base <= 0 || max <= 0 || base > max {
			return fmt.Errorf("sprout: WithRetryPolicy: backoff bounds %v..%v must be positive and ordered", base, max)
		}
		s.Retry = fault.Retry{MaxAttempts: maxAttempts, Base: base, Max: max}
		return nil
	}
}

// WithRowExecution disables the vectorized (columnar) execution tier,
// running scans, filters, projections and joins tuple-at-a-time through the
// row engine. Results are bit-identical either way — the row path is the
// escape hatch for benchmark baselines and differential tests, not a
// correctness knob.
func WithRowExecution() RunOption {
	return func(s *plan.Spec) error { s.RowExec = true; return nil }
}

// applyOptions folds options into a spec, surfacing the first validation
// error.
func applyOptions(spec *plan.Spec, opts []RunOption) error {
	for _, o := range opts {
		if err := o(spec); err != nil {
			return err
		}
	}
	return nil
}

// Run evaluates the query with the given plan style. Queries that are not
// tractable for the sort+scan operator (no hierarchical signature exists
// even under the database's declared FDs; #P-hard in general, §II) fall
// through the chain: OBDD lineage compilation, then order-free d-tree
// decomposition — each still exact when the per-answer compilation fits
// its budget — and finally Monte Carlo confidence estimation (check
// Result.Stats.Approximate). Pass the RequireExact option to reject such
// queries instead.
func (db *DB) Run(q *Query, style PlanStyle, opts ...RunOption) (*Result, error) {
	spec := plan.Spec{Style: style}
	if err := applyOptions(&spec, opts); err != nil {
		return nil, err
	}
	return db.RunSpec(q, spec)
}

// RunSpec evaluates with full plan control (hybrid prefix, sort budgets).
func (db *DB) RunSpec(q *Query, spec plan.Spec) (*Result, error) {
	return db.runSpecCtx(context.Background(), q, spec)
}

func (db *DB) runSpecCtx(ctx context.Context, q *Query, spec plan.Spec) (*Result, error) {
	res, err := plan.RunContext(ctx, db.catalog, q.q, db.sigma, spec)
	if err != nil {
		return nil, err
	}
	return wrapResult(q, res), nil
}

func wrapResult(q *Query, res *plan.Result) *Result {
	out := &Result{
		Columns: append(append([]string(nil), q.q.Head...), conf.ConfCol),
		Stats:   res.Stats,
	}
	for _, row := range res.Rows.Rows {
		n := len(row)
		out.Rows = append(out.Rows, Row{
			Values:     append([]Value(nil), row[:n-1]...),
			Confidence: row[n-1].F,
		})
	}
	return out
}

// Engine is the concurrency-safe serving facade over a loaded database: it
// owns one shared worker pool (sized by WithWorkers at construction) from
// which every parallel stage of every concurrently served query draws, so
// total parallelism stays bounded no matter how many requests are in
// flight. Construct it once after loading data and declaring FDs — the
// catalog must not be modified while the engine serves — then call Run,
// RunBatch and Prepare from any number of goroutines.
//
// Run accepts a context: cancelling it aborts the run's pipelines, sort
// passes, OBDD compilations and Monte Carlo samplers within a few thousand
// tuples or samples.
type Engine struct {
	db       *DB
	defaults plan.Spec
	pool     *pool.Pool
	metrics  *obs.Registry
	// mem is the engine-wide memory-accounting root: every budgeted run
	// (WithMemoryBudget) charges a per-query child of it, so concurrent
	// governed queries share one accounting tree.
	mem *fault.Governor
}

// NewEngine builds a serving engine over the database. opts set the
// defaults every Run inherits (worker count, Monte Carlo accuracy, OBDD
// budget, ...); per-call options override them. Invalid option values —
// WithWorkers(n ≤ 0), WithEpsilonDelta outside (0,1), WithNodeBudget(≤ 0)
// — are rejected here with a clear error. A per-call WithWorkers that
// differs from the engine's default gives that run its own transient pool
// of the requested size instead of the engine's shared one — useful for
// forcing a serial run — at the price of stepping outside the engine's
// global parallelism budget. Requesting exactly the default worker count
// keeps the shared pool.
func (db *DB) NewEngine(opts ...RunOption) (*Engine, error) {
	spec := plan.Spec{}
	if err := applyOptions(&spec, opts); err != nil {
		return nil, err
	}
	return &Engine{db: db, defaults: spec, pool: pool.New(spec.Workers),
		metrics: obs.New(), mem: fault.NewGovernor(0, nil)}, nil
}

// MemoryInUse reports the bytes currently reserved by budgeted
// (WithMemoryBudget) runs across the whole engine; MemoryHighWater the
// peak. Ungoverned runs do not account their memory and report zero.
func (e *Engine) MemoryInUse() int64 { return e.mem.Used() }

// MemoryHighWater reports the peak engine-wide governed reservation.
func (e *Engine) MemoryHighWater() int64 { return e.mem.HighWater() }

// Workers returns the engine pool's total worker count.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Metrics returns a point-in-time snapshot of the engine-wide counters,
// gauges and latency histograms every Run has been feeding: queries served
// (total, per style, failed), answer and distinct tuple counts, confidence
// tier work (scans, OBDD nodes, d-tree steps, Monte Carlo samples, memo
// hits/misses) and query/tuple/probability latency distributions. Safe for
// concurrent use; counters are cumulative since NewEngine.
func (e *Engine) Metrics() obs.Snapshot { return e.metrics.Snapshot() }

// MetricsRegistry exposes the engine's live metrics registry, for mounting
// the observability HTTP endpoints: obs.Handler(e.MetricsRegistry()) serves
// /metrics, /healthz and /debug/pprof. The registry is engine-owned and
// always live — this accessor only shares it.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.metrics }

// spec assembles the effective plan spec of one call: engine defaults, then
// style, then per-call options. Calls normally draw from the engine's
// shared pool; a per-call WithWorkers that changes the worker count
// overrides it with a transient pool of the requested size for that run —
// honoring the option (WithWorkers(1) really is the single-threaded
// executor) at the price of stepping outside the engine's global
// parallelism budget for that one call.
func (e *Engine) spec(style PlanStyle, opts []RunOption) (plan.Spec, error) {
	spec := e.defaults
	spec.Style = style
	spec.Metrics = e.metrics
	if err := applyOptions(&spec, opts); err != nil {
		return plan.Spec{}, err
	}
	if spec.Workers == e.defaults.Workers {
		spec.Pool = e.pool
	}
	if spec.MemBudget > 0 {
		spec.Mem = e.mem
	}
	return spec, nil
}

// Run evaluates one query on the engine, like DB.Run but concurrency-safe,
// pool-shared and cancellable. A nil ctx means no cancellation.
func (e *Engine) Run(ctx context.Context, q *Query, style PlanStyle, opts ...RunOption) (*Result, error) {
	spec, err := e.spec(style, opts)
	if err != nil {
		return nil, err
	}
	return e.db.runSpecCtx(ctx, q, spec)
}

// PreparedQuery is a query resolved against the engine once — validated,
// style checked, signature and fallback chain chosen — and runnable many
// times concurrently.
type PreparedQuery struct {
	q  *Query
	pp *plan.Prepared
}

// Prepare resolves a query once. Static errors (invalid query, unknown
// style, RequireExact on an intractable query) surface here instead of on
// every Run.
func (e *Engine) Prepare(q *Query, style PlanStyle, opts ...RunOption) (*PreparedQuery, error) {
	spec, err := e.spec(style, opts)
	if err != nil {
		return nil, err
	}
	pp, err := plan.Prepare(e.db.catalog, q.q, e.db.sigma, spec)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{q: q, pp: pp}, nil
}

// Run executes the prepared query. Safe for concurrent use.
func (p *PreparedQuery) Run(ctx context.Context) (*Result, error) {
	res, err := p.pp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return wrapResult(p.q, res), nil
}

// BatchItem is one request of an Engine.RunBatch call.
type BatchItem struct {
	Query *Query
	Style PlanStyle
	Opts  []RunOption
}

// BatchResult pairs one batch item's outcome with its error; exactly one of
// Result and Err is non-nil.
type BatchResult struct {
	Result *Result
	Err    error
}

// RunBatch evaluates a batch of queries concurrently on the engine's worker
// pool and returns their results in request order. One query's failure does
// not disturb the others; cancelling ctx marks every not-yet-finished item
// with the context's error.
func (e *Engine) RunBatch(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	// The per-item closure never returns an error: a query failure is that
	// item's result, not a reason to stop the batch.
	e.pool.Do(ctx, len(items), func(i int) error {
		r, err := e.Run(ctx, items[i].Query, items[i].Style, items[i].Opts...)
		out[i] = BatchResult{Result: r, Err: err}
		return nil
	})
	for i := range out {
		if out[i].Result == nil && out[i].Err == nil && ctx != nil {
			out[i].Err = ctx.Err() // item never ran: the batch was cancelled
		}
	}
	return out
}

// Signature returns the query's signature under the database's FDs — the
// static structure driving the confidence operator (§III); useful for
// explaining plans.
func (db *DB) Signature(q *Query) (string, error) {
	s, err := signature.Best(q.q, db.sigma)
	if err != nil {
		return "", err
	}
	return s.String(), nil
}

// Explain renders the logical plan IR the style would execute for the
// query — scans, selections, projections, joins and confidence-placement
// points — without running it. Under the Auto style it additionally prints
// the cost-based decision: the chosen style and the per-style cost table
// derived from the catalog's ANALYZE statistics. Options (RequireExact,
// WithEpsilonDelta, …) influence the plan exactly as they would a Run.
func (db *DB) Explain(q *Query, style PlanStyle, opts ...RunOption) (string, error) {
	spec := plan.Spec{Style: style}
	if err := applyOptions(&spec, opts); err != nil {
		return "", err
	}
	return plan.Explain(db.catalog, q.q, db.sigma, spec)
}

// Analyze gathers the catalog statistics the cost-based planner consumes —
// one pass per base table — and caches them. The Auto style and Explain
// trigger it implicitly; call it explicitly to pay the ANALYZE cost at load
// time instead of on the first Auto query.
func (db *DB) Analyze() { db.catalog.Analyze() }

// NumScans reports how many sort+scan passes the confidence operator needs
// for this query (Prop. V.10): 1 for signatures with the 1scan property.
func (db *DB) NumScans(q *Query) (int, error) {
	s, err := signature.Best(q.q, db.sigma)
	if err != nil {
		return 0, err
	}
	return signature.NumScans(s), nil
}

// Format renders a result as an aligned text table (for examples/tools).
func (r *Result) Format() string {
	out := ""
	for _, c := range r.Columns {
		out += fmt.Sprintf("%-22s", c)
	}
	out += "\n"
	for _, row := range r.Rows {
		for _, v := range row.Values {
			out += fmt.Sprintf("%-22s", v.String())
		}
		out += fmt.Sprintf("%-22.6g", row.Confidence)
		out += "\n"
	}
	return out
}
